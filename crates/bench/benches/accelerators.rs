//! Criterion micro-benchmarks of the accelerator models against their
//! software baselines, plus end-to-end request throughput of the simulator
//! itself. These measure the *simulator's* wall-clock speed (useful for
//! keeping experiments fast); the paper's performance claims are evaluated
//! by the `fig*` binaries in simulated cycles.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use accel_htable::HwHashTable;
use accel_regex::{regexp_shadow, regexp_sieve};
use accel_string::StringAccel;
use php_runtime::array::{ArrayKey, PhpArray};
use php_runtime::strfuncs::{scalar_find, swar_find};
use php_runtime::value::PhpValue;
use regex_engine::Regex;
use workloads::{AppKind, LoadGen};

fn bench_htable(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash-table");
    let keys: Vec<String> = (0..64).map(|i| format!("post_meta_key_{i}")).collect();

    g.bench_function("software-phparray-get", |b| {
        let mut arr = PhpArray::new();
        for (i, k) in keys.iter().enumerate() {
            arr.insert(ArrayKey::from(k.as_str()), PhpValue::from(i as i64));
        }
        let lookup: Vec<ArrayKey> = keys.iter().map(|k| ArrayKey::from(k.as_str())).collect();
        b.iter(|| {
            for k in &lookup {
                black_box(arr.get_with_cost(k));
            }
        })
    });

    g.bench_function("hw-htable-get", |b| {
        let mut ht = HwHashTable::default();
        for (i, k) in keys.iter().enumerate() {
            ht.set(0x1000, k.as_bytes(), i as u64);
        }
        b.iter(|| {
            for k in &keys {
                black_box(ht.get(0x1000, k.as_bytes()));
            }
        })
    });
    g.finish();
}

fn bench_string(c: &mut Criterion) {
    let mut g = c.benchmark_group("string-find");
    let mut hay = vec![b'a'; 4096];
    hay.extend_from_slice(b"needle");

    g.bench_function("scalar", |b| {
        b.iter(|| black_box(scalar_find(&hay, b"needle")))
    });
    g.bench_function("swar", |b| b.iter(|| black_box(swar_find(&hay, b"needle"))));
    g.bench_function("accel-model", |b| {
        let mut a = StringAccel::default();
        b.iter(|| black_box(a.find(&hay, b"needle", 0).unwrap()))
    });
    g.finish();
}

fn bench_regex(c: &mut Criterion) {
    let mut g = c.benchmark_group("regex-pipeline");
    let mut content = Vec::new();
    for i in 0..40 {
        content.extend_from_slice(b"plenty of plain regular words in this block ");
        if i % 8 == 0 {
            content.extend_from_slice(b"with 'quotes' here ");
        }
    }
    let sieve_re = Regex::new("'").unwrap();
    let shadow_re = Regex::new("\"").unwrap();

    g.bench_function("full-scan", |b| {
        b.iter(|| {
            black_box(sieve_re.find_all(&content));
            black_box(shadow_re.find_all(&content));
        })
    });
    g.bench_function("sieve+shadow", |b| {
        b.iter_batched(
            StringAccel::default,
            |mut accel| {
                let s = regexp_sieve(&sieve_re, &content, 32, &mut accel);
                black_box(regexp_shadow(&shadow_re, &content, &s.hv));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_endtoend(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end");
    g.sample_size(10);
    for kind in [AppKind::WordPress, AppKind::Drupal] {
        for (label, spec) in [("baseline", false), ("specialized", true)] {
            g.bench_function(format!("{}-{label}", kind.label()), |b| {
                b.iter_batched(
                    || {
                        let app = kind.build(1);
                        let m = if spec {
                            phpaccel_core::PhpMachine::specialized()
                        } else {
                            phpaccel_core::PhpMachine::baseline()
                        };
                        (app, m)
                    },
                    |(mut app, mut m)| {
                        let lg = LoadGen {
                            warmup: 0,
                            measured: 3,
                            context_switch_every: 0,
                        };
                        black_box(lg.run(app.as_mut(), &mut m));
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_htable,
    bench_string,
    bench_regex,
    bench_endtoend
);
criterion_main!(benches);
