//! Figure 4: categorization of WordPress leaf functions into the four
//! major activity categories after the prior optimizations.

use bench::{header, pct, row, run_app, standard_load};
use php_runtime::Category;
use phpaccel_core::priors::apply;
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "Figure 4 — WordPress leaf functions by category (after priors)",
        "many leaf functions fall into hash-map/heap/string/regex categories",
    );
    let cfg = MachineConfig::default();
    let m = run_app(
        AppKind::WordPress,
        ExecMode::Baseline,
        cfg.clone(),
        standard_load(),
        0xF04,
    );
    let out = apply(m.ctx().profiler(), &cfg.priors);
    let total = out.uops_after.max(1) as f64;
    let breakdown = out.category_breakdown_after();
    let widths = [14, 10, 8];
    println!(
        "{}",
        row(&["category".into(), "share".into(), "fns".into()], &widths)
    );
    for cat in Category::ALL {
        let uops = breakdown.get(&cat).copied().unwrap_or(0);
        let fns = out
            .after
            .iter()
            .filter(|r| r.category == cat && r.uops > 0)
            .count();
        println!(
            "{}",
            row(
                &[
                    cat.label().into(),
                    pct(uops as f64 / total),
                    fns.to_string()
                ],
                &widths
            )
        );
    }
    let accel: u64 = Category::ALL
        .iter()
        .filter(|c| c.is_accel_target())
        .map(|c| breakdown.get(c).copied().unwrap_or(0))
        .sum();
    println!(
        "\nfour accelerator categories combined: {}",
        pct(accel as f64 / total)
    );
}
