//! Figure 1: distribution of CPU cycles over leaf functions.
//!
//! Paper: SPECWeb2005 workloads have hotspots — very few functions cover
//! ~90 % of execution time. The real-world PHP applications are flat: the
//! hottest single function (JIT-compiled code) covers only 10-12 %, and it
//! takes ~100 functions to reach ~65 % of cycles.

use bench::{header, row, run_app, standard_load};
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "Figure 1 — leaf-function cycle distribution",
        "SPECWeb: few functions ≈ 90%; PHP apps: hottest ≈ 10-12%, ~100 fns ≈ 65%",
    );
    let apps = [
        AppKind::SpecWebBanking,
        AppKind::SpecWebEcommerce,
        AppKind::WordPress,
        AppKind::Drupal,
        AppKind::MediaWiki,
    ];
    let widths = [18, 8, 9, 9, 9, 9, 10];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "fns".into(),
                "top-1".into(),
                "top-5".into(),
                "top-25".into(),
                "top-100".into(),
                "hottest-fn".into()
            ],
            &widths
        )
    );
    for kind in apps {
        let m = run_app(
            kind,
            ExecMode::Baseline,
            MachineConfig::default(),
            standard_load(),
            0xF01,
        );
        let prof = m.ctx().profiler();
        let rows = prof.leaf_profile();
        println!(
            "{}",
            row(
                &[
                    kind.label().into(),
                    rows.len().to_string(),
                    format!("{:.1}%", prof.cumulative_share(1) * 100.0),
                    format!("{:.1}%", prof.cumulative_share(5) * 100.0),
                    format!("{:.1}%", prof.cumulative_share(25) * 100.0),
                    format!("{:.1}%", prof.cumulative_share(100) * 100.0),
                    rows[0].name.clone(),
                ],
                &widths
            )
        );
    }
    println!("\nseries: cumulative share over hottest-N (PHP apps), N = 1..30");
    for kind in AppKind::PHP_APPS {
        let m = run_app(
            kind,
            ExecMode::Baseline,
            MachineConfig::default(),
            standard_load(),
            0xF01,
        );
        let prof = m.ctx().profiler();
        let series: Vec<String> = (1..=30)
            .map(|n| format!("{:.0}", prof.cumulative_share(n) * 100.0))
            .collect();
        println!("{:>12}: {}", kind.label(), series.join(" "));
    }
}
