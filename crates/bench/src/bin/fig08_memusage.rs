//! Figure 8: memory usage patterns.
//!
//! (a) cumulative distribution of allocation sizes — "a majority of the
//! allocation and deallocation requests retrieve at most 128 bytes";
//! (b)/(c) per-slab live memory stays flat over time for the four smallest
//! 32-byte bands — strong memory reuse.

use bench::{header, row, run_app, standard_load};
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "Figure 8 — allocation-size CDF and per-slab live-memory timeline",
        "≤128B dominates; live bytes flat over time for the small slabs",
    );
    println!("(a) CDF of request sizes:");
    let marks = [32usize, 64, 96, 128, 256, 512, 1024, 4096];
    let mut widths = vec![12];
    widths.extend(std::iter::repeat_n(8, marks.len()));
    let mut head = vec!["app".to_string()];
    head.extend(marks.iter().map(|m| format!("≤{m}")));
    println!("{}", row(&head, &widths));
    for kind in AppKind::PHP_APPS {
        let m = run_app(
            kind,
            ExecMode::Baseline,
            MachineConfig::default(),
            standard_load(),
            0xF08,
        );
        let stats = m.ctx().with_allocator(|a| a.stats().clone());
        let mut cells = vec![kind.label().to_string()];
        for &b in &marks {
            cells.push(format!("{:.0}%", stats.cdf_at(b) * 100.0));
        }
        println!("{}", row(&cells, &widths));
    }
    println!("\n(b)/(c) live bytes per 32-byte band over time (WordPress, MediaWiki):");
    for kind in [AppKind::WordPress, AppKind::MediaWiki] {
        let m = run_app(
            kind,
            ExecMode::Baseline,
            MachineConfig::default(),
            standard_load(),
            0xF08,
        );
        let samples = m.ctx().with_allocator(|a| a.timeline().to_vec());
        println!(
            "{} ({} samples; showing every ~10th):",
            kind.label(),
            samples.len()
        );
        println!(
            "{:>10} {:>9} {:>9} {:>9} {:>9}",
            "tick", "0-32B", "32-64B", "64-96B", "96-128B"
        );
        let step = (samples.len() / 10).max(1);
        for s in samples.iter().step_by(step) {
            let band = |a: usize, b: usize| s.live_small[a] + s.live_small[b];
            println!(
                "{:>10} {:>9} {:>9} {:>9} {:>9}",
                s.tick,
                band(0, 1),
                band(2, 3),
                band(4, 5),
                band(6, 7)
            );
        }
    }
}
