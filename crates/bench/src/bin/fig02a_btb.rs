//! Figure 2(a): execution time vs BTB size for different I-cache sizes.
//!
//! Paper: PHP apps keep gaining as the BTB grows from 4K to 64K entries
//! (even 64K only reaches ≈95.85 % hit rate); very large instruction
//! caches yield only minor gains.

use bench::{header, row};
use uarch_sim::btb::{Btb, BtbConfig};
use uarch_sim::cache::{CacheConfig, Hierarchy};
use uarch_sim::core_model::{simulate, CoreKind, Machine};
use uarch_sim::trace::synthesize;
use workloads::AppKind;

fn main() {
    header(
        "Figure 2(a) — BTB sweep 4K..64K × I-cache 32K/128K/512K (WordPress)",
        "BTB growth keeps helping; 64K BTB hit ≈ 95.85%; big I$ ≈ minor gain",
    );
    let mut profile = AppKind::WordPress.trace_profile(0xB7);
    profile.functions = 2200; // the full application's code population
    let trace = synthesize(&profile, 600_000);
    let btb_sizes = [4096usize, 8192, 16384, 32768, 65536];
    let icache_sizes = [(32usize, "32K-I$"), (128, "128K-I$"), (512, "512K-I$")];
    let widths = [10, 12, 12, 12, 11];
    println!(
        "{}",
        row(
            &[
                "BTB".into(),
                "32K-I$".into(),
                "128K-I$".into(),
                "512K-I$".into(),
                "BTB-hit".into()
            ],
            &widths
        )
    );
    // Normalize to the smallest configuration.
    let mut baseline_cycles = None;
    for &btb in &btb_sizes {
        let mut cells = vec![format!("{}K", btb / 1024)];
        let mut hit = 0.0;
        for &(ic, _) in &icache_sizes {
            let mut m = Machine::server(CoreKind::OoO4);
            m.btb = Btb::new(BtbConfig {
                entries: btb,
                ways: 2,
            });
            m.hierarchy = Hierarchy::new(
                CacheConfig {
                    capacity: ic << 10,
                    ways: 8,
                    next_line_prefetch: true,
                },
                CacheConfig::l1_32k(),
                CacheConfig::l2_1m(),
            );
            let r = simulate(&trace, &mut m);
            let base = *baseline_cycles.get_or_insert(r.cycles as f64);
            cells.push(format!("{:.4}", r.cycles as f64 / base));
            hit = m.btb.stats().hit_rate();
        }
        cells.push(format!("{:.2}%", hit * 100.0));
        println!("{}", row(&cells, &widths));
    }
}
