//! Figure 14: execution time normalized to unmodified HHVM.
//!
//! Paper: prior optimizations bring average execution time to 88.15 %;
//! the specialized core brings it to 70.22 % (17.93 % improvement over the
//! priors machine, 19.79 % incremental once priors are standard). Drupal
//! benefits least.

use bench::{all_comparisons, header, pct, row, standard_load};

fn main() {
    header(
        "Figure 14 — normalized execution time",
        "baseline=1.0; +priors ≈ 0.8815 avg; +specialized ≈ 0.7022 avg; Drupal least",
    );
    let cmps = all_comparisons(standard_load(), 0xF14);
    let widths = [12, 10, 10, 13, 14];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "baseline".into(),
                "+priors".into(),
                "+specialized".into(),
                "impr/priors".into()
            ],
            &widths
        )
    );
    let mut sum_p = 0.0;
    let mut sum_s = 0.0;
    let mut sum_i = 0.0;
    for c in &cmps {
        println!(
            "{}",
            row(
                &[
                    c.app.clone(),
                    "1.000".into(),
                    format!("{:.4}", c.normalized_priors()),
                    format!("{:.4}", c.normalized_specialized()),
                    pct(c.improvement_over_priors()),
                ],
                &widths
            )
        );
        sum_p += c.normalized_priors();
        sum_s += c.normalized_specialized();
        sum_i += c.improvement_over_priors();
    }
    let n = cmps.len() as f64;
    println!(
        "{}",
        row(
            &[
                "average".into(),
                "1.000".into(),
                format!("{:.4}", sum_p / n),
                format!("{:.4}", sum_s / n),
                pct(sum_i / n),
            ],
            &widths
        )
    );
    let drupal = cmps
        .iter()
        .find(|c| c.app == "Drupal")
        .expect("drupal present");
    let min_impr = cmps
        .iter()
        .map(|c| c.improvement_over_priors())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\ncheck: Drupal benefits least: {} (min improvement {})",
        drupal.improvement_over_priors() <= min_impr + 1e-9,
        pct(min_impr)
    );
}
