//! Figure 15: breakdown of the specialized core's benefit per accelerator.
//!
//! Paper (averages over the three apps): heap manager 7.29 %, hash table
//! 6.45 %, string accelerator 4.51 %, regexp accelerator 1.96 %. WordPress
//! sees considerable regexp benefit, MediaWiki modest; Drupal's Figure-12
//! opportunity doesn't translate because it spends little time in
//! regexps/strings.

use bench::{all_comparisons, header, pct, row, standard_load};
use php_runtime::Category;

fn main() {
    header(
        "Figure 15 — benefit split per accelerator (fraction of +priors time)",
        "avg: heap 7.29% > hash 6.45% > string 4.51% > regex 1.96%",
    );
    let cmps = all_comparisons(standard_load(), 0xF15);
    let cats = [
        Category::Heap,
        Category::HashMap,
        Category::String,
        Category::Regex,
    ];
    let widths = [12, 10, 10, 10, 10, 11];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "heap".into(),
                "hash".into(),
                "string".into(),
                "regex".into(),
                "total".into()
            ],
            &widths
        )
    );
    let mut avg = [0.0f64; 4];
    for c in &cmps {
        let split = c.benefit_by_category();
        let mut cells = vec![c.app.clone()];
        let mut total = 0.0;
        for (i, cat) in cats.iter().enumerate() {
            let v = split[cat];
            avg[i] += v / cmps.len() as f64;
            total += v;
            cells.push(pct(v));
        }
        cells.push(pct(total));
        println!("{}", row(&cells, &widths));
    }
    let mut cells = vec!["average".to_string()];
    let total: f64 = avg.iter().sum();
    for v in avg {
        cells.push(pct(v));
    }
    cells.push(pct(total));
    println!("{}", row(&cells, &widths));
}
