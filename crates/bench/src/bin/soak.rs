//! `soak` — fault-injection soak of the fault-tolerant request server.
//!
//! Drives a deterministic request mix that exercises all four accelerator
//! domains (hash table, heap manager, string unit, regexp engine) through a
//! [`serve::Server`] with a seeded [`serve::FaultPlan`] covering every
//! domain plus forced allocator OOMs, while byte-comparing each successful
//! response against an all-software reference machine.
//!
//! The run fails (exit 1) unless:
//!
//! * every request completes — availability is exactly the planned value
//!   (only the scheduled OOM requests fail);
//! * each domain's faults were detected and tripped its circuit breaker;
//! * each breaker recovered (half-open trial succeeded) and ends closed;
//! * every successful response is byte-identical to the software baseline.
//!
//! With `--workers N` the same stream is sharded across an N-worker
//! [`serve::WorkerPool`] — each worker gets a private machine, its slice of
//! the (N×-denser) fault plan, and its own breakers — and the pass criteria
//! are asserted on the merged pool totals. Machines are *not* reset between
//! requests in either mode: faults must land in live accelerator state.
//! Response bodies are dropped from the per-request records in both modes
//! (`keep_bodies = false`) so long soaks run in bounded memory; outcomes,
//! byte-identity replay, and fault deltas are computed before the drop.
//!
//! With `--shed --shape S` the same fault-injected request mix is driven
//! through the overload simulator instead: arrivals follow shape `S`
//! (`steady|diurnal|burst|flash-crowd`) at ~2× the calibrated capacity, a
//! deadline-aware admission controller sheds what would miss the latency
//! budget, and the pass criteria become the overload-survival contract —
//! shedding happened, every *admitted* request succeeded (except the
//! planned OOM kills), replay stayed byte-identical, and every breaker
//! still tripped and recovered. Machines are not reset between requests
//! here either, and `--workers N` selects the *simulated* worker count
//! draining the queue (execution stays single-threaded and deterministic).
//!
//! With `--memo` a single cross-request [`serve::MemoCache`] is shared by
//! every primary machine for the whole soak: each request's corpus script
//! runs with the memo tier attached (implies the script phase even without
//! `--engine`), so proven call sites replay out of the shared cache while
//! faults, breaker trips, OOM kills, and degradations churn around them —
//! and the byte-identity replay against the software reference still has to
//! hold for every response. The run additionally fails unless the tier
//! genuinely engaged (stores and warm hits both nonzero).
//!
//! Usage: `soak [seed] [--workers N] [--arena] [--engine tree|vm]
//! [--memo] [--shed] [--shape steady|diurnal|burst|flash-crowd]`
//! (default seed 20170613, 1 worker). `--arena` enables the allocator's
//! arena/epoch mode on every primary machine and routes the request-scoped
//! heap churn through the arena-safe entry point — the reference machines
//! stay on the classic free-list path, so byte-identity also cross-checks
//! the two allocators under fault injection and forced OOM kills.
//! `--engine` additionally runs one corpus script per request through the
//! machine's engine dispatch (`tree` = tree-walking evaluator, `vm` = the
//! compiled opcode VM); the reference machines stay on the default
//! tree-walk engine, so with `--engine vm` the byte-identity replay is a
//! cross-engine differential under live fault injection.

use php_interp::MemoTier;
use php_runtime::{ArrayKey, PhpArray, PhpStr, PhpValue};
use phpaccel_core::{AccelId, Engine, PhpMachine};
use regex_engine::Regex;
use serve::{
    AdmissionConfig, AdmissionController, BreakerConfig, BreakerState, FaultKind, FaultPlan,
    MemoCache, OverloadConfig, OverloadSim, PlannedFault, PoolConfig, RequestOutcome,
    SandboxConfig, Server, WorkerPool,
};
use std::collections::HashMap;
use std::sync::Arc;
use workloads::php_corpus::CorpusCache;
use workloads::{ArrivalConfig, ArrivalShape};

const TOTAL_REQUESTS: u64 = 300;
const BURN_IN: u64 = 20;
const LAST_FAULT: u64 = 220;
const OOM_REQUESTS: [u64; 2] = [60, 150];

/// The request mix: every domain is touched every request, so an injected
/// fault is detected on (or immediately after) the request it lands on, and
/// a half-open trial genuinely exercises the hardware path it is probing.
struct SoakApp {
    rules: Vec<(Regex, Vec<u8>)>,
    author_re: Regex,
    /// Route the request-scoped heap churn through the arena-safe entry
    /// point (a no-op on machines with arena mode off, e.g. references).
    arena: bool,
    /// When set, run one corpus script per request through the machine's
    /// engine dispatch (primaries may be on the VM; references tree-walk).
    scripts: Option<Arc<CorpusCache>>,
    /// Cross-request memo tier shared by every machine this app serves
    /// (reference machines run the same closure, so they see it too — the
    /// values-in-key discipline keeps their replays byte-identical anyway).
    memo: Option<Arc<dyn MemoTier>>,
    /// One persistent array per machine (primary and reference), keyed by
    /// machine address: entries stay live in the hardware hash table across
    /// requests so injected corruption has something to land on.
    arrays: HashMap<usize, PhpArray>,
}

impl SoakApp {
    fn new(
        arena: bool,
        scripts: Option<Arc<CorpusCache>>,
        memo: Option<Arc<dyn MemoTier>>,
    ) -> Self {
        SoakApp {
            arena,
            scripts,
            memo,
            rules: vec![
                (Regex::new("'").unwrap(), b"&#8217;".to_vec()),
                (Regex::new("\"").unwrap(), b"&#8221;".to_vec()),
                (Regex::new("<br>").unwrap(), b"<br/>".to_vec()),
            ],
            author_re: Regex::new("https://localhost/\\?author=[a-z]+").unwrap(),
            arrays: HashMap::new(),
        }
    }

    fn handle(&mut self, m: &mut PhpMachine, req: u64) -> Vec<u8> {
        let mut out = Vec::new();

        // Heap churn: varied request-scoped sizes so free lists stay
        // populated (scoped blocks are reclaimed even when the request is
        // OOM-killed mid-churn). In arena mode only even slots go to the
        // arena: the odd ones keep the free lists busy so HeapFreelist
        // faults still have nodes to poison and the heap breaker still
        // gets exercised.
        for i in 0..6 {
            let arena_safe = self.arena && i % 2 == 0;
            m.alloc_scoped_static(48 + ((req as usize * 13 + i * 37) % 200), arena_safe);
        }

        // Hash-table traffic against the persistent map.
        let mkey = m as *const PhpMachine as usize;
        let arr = self.arrays.entry(mkey).or_insert_with(|| m.new_array());
        for k in 0..6u64 {
            m.array_set(
                arr,
                ArrayKey::Str(format!("key{k}").into()),
                PhpValue::Int((req * 7 + k) as i64),
            );
        }
        for k in 0..6u64 {
            let v = m.array_get(arr, &ArrayKey::Str(format!("key{k}").into()));
            out.extend_from_slice(format!("{v:?};").as_bytes());
        }
        out.extend_from_slice(format!("n={};", m.foreach(arr).len()).as_bytes());

        // String pipeline.
        let s: PhpStr = format!("  <b>Request #{req}</b> & 'friends'  ").into();
        let t = m.trim(&s);
        let lower = m.strtolower(&t);
        let esc = m.htmlspecialchars(&lower);
        let (rep, nrep) = m.str_replace(b"e", b"3", &esc);
        out.extend_from_slice(rep.as_bytes());
        out.extend_from_slice(format!(";r={nrep};p={};", m.explode(b" ", &esc).len()).as_bytes());

        // Regexp engine: texturize (hint vectors) + content reuse.
        let content: PhpStr = format!("Post {req} says 'hi' and \"bye\"<br>fin {}", req % 9).into();
        let tex = m.texturize(&content, &self.rules);
        // The hardware pipeline pads replacements with spaces to keep the
        // hint vector segment-aligned (Figure 11) — that is modeled,
        // intentional skew, so the response folds the padding out before
        // the byte-identity comparison.
        out.extend(tex.as_bytes().iter().copied().filter(|&b| b != b' '));
        let url: PhpStr = format!(
            "https://localhost/?author={}",
            (b'a' + (req % 26) as u8) as char
        )
        .into();
        let hit = m.match_with_reuse(0x4010_0000, &self.author_re, &url);
        out.extend_from_slice(format!(";a={hit:?}").as_bytes());

        // Engine-dispatch phase: the script runs on whatever engine the
        // machine is set to, so primaries may execute compiled opcodes
        // while the replay reference tree-walks the same source.
        if let Some(cache) = &self.scripts {
            let script = cache.script_for_request(req);
            let bytes = match &self.memo {
                Some(tier) => script.run_memo(m, true, Some(Arc::clone(tier))),
                None => script.run(m, true),
            };
            out.extend_from_slice(&bytes);
        }

        m.end_request();
        out
    }
}

/// Seeded plan over every accelerator domain, plus two forced OOMs.
/// `per_domain` scales with the worker count so each worker's shard still
/// carries enough faults to trip its breakers.
fn build_plan(seed: u64, per_domain: usize) -> FaultPlan {
    let mut faults = FaultPlan::seeded(seed, per_domain, BURN_IN, LAST_FAULT)
        .all()
        .to_vec();
    for at in OOM_REQUESTS {
        faults.push(PlannedFault {
            at_request: at,
            kind: FaultKind::AllocatorOom,
        });
    }
    FaultPlan::new(faults)
}

/// Window spans the whole fault phase so every domain accumulates enough
/// marks to trip; backoff is short enough to recover well before the end.
fn breaker_cfg() -> BreakerConfig {
    BreakerConfig {
        fault_threshold: 2,
        window: LAST_FAULT,
        base_backoff: 10,
        max_backoff: 40,
    }
}

fn sandbox() -> SandboxConfig {
    SandboxConfig {
        fuel: None,
        uop_budget: Some(50_000_000),
        memory_limit: Some(64 << 20),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers: usize = 1;
    let mut seed: u64 = 20_170_613;
    let mut arena = false;
    let mut engine: Option<Engine> = None;
    let mut shed = false;
    let mut memo = false;
    let mut shape = ArrivalShape::Steady;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--memo" {
            memo = true;
        } else if a == "--workers" {
            workers = it
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--workers takes a positive integer");
        } else if a == "--arena" {
            arena = true;
        } else if a == "--engine" {
            engine = Some(match it.next().map(String::as_str) {
                Some("tree") => Engine::TreeWalk,
                Some("vm") => Engine::Vm,
                other => panic!("--engine takes 'tree' or 'vm', got {other:?}"),
            });
        } else if a == "--shed" {
            shed = true;
        } else if a == "--shape" {
            let name = it.next().expect("--shape takes an arrival shape name");
            shape = ArrivalShape::parse(name).unwrap_or_else(|| {
                panic!("unknown arrival shape {name:?} (steady|diurnal|burst|flash-crowd)")
            });
        } else {
            seed = a.parse().expect("seed must be an integer");
        }
    }
    // The memo tier rides on the script phase, so `--memo` implies it.
    let scripts = (engine.is_some() || memo).then(|| Arc::new(CorpusCache::build()));
    let memo_cache = memo.then(|| Arc::new(MemoCache::default()));

    if shed {
        run_overload(seed, workers, arena, engine, scripts, memo_cache, shape);
        return;
    }

    if workers > 1 {
        run_pool(seed, workers, arena, engine, scripts, memo_cache);
        return;
    }

    let plan = build_plan(seed, 4);
    let planned = plan.all().len();
    let mut machine = PhpMachine::specialized();
    if let Some(e) = engine {
        machine.set_engine(e);
    }
    if arena {
        machine.ctx().set_arena_enabled(true);
    }
    let mut server = Server::new(machine, breaker_cfg(), sandbox())
        .with_fault_plan(plan)
        .with_reference(PhpMachine::baseline())
        .with_keep_bodies(false);

    let tier = memo_cache.clone().map(|c| c as Arc<dyn MemoTier>);
    let mut app = SoakApp::new(arena, scripts, tier);
    let mut handler = |m: &mut PhpMachine, req: u64| app.handle(m, req);

    // Expected panics (forced OOMs) would otherwise spam stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let records = server.serve_many(TOTAL_REQUESTS, &mut handler);
    let _ = std::panic::take_hook();

    let stats = server.stats().clone();
    let injected = server.machine().injected_fault_counts();
    let detected = server.machine().detected_fault_counts();

    println!("== soak: fault-tolerant serving (seed {seed}) ==");
    println!(
        "requests {}  ok {}  timeouts {}  ooms {}  panics {}  planned faults {}",
        stats.requests, stats.ok, stats.timeouts, stats.ooms, stats.panics, planned
    );
    println!(
        "availability {:.2}% (expected {:.2}%)  byte mismatches vs software baseline: {}",
        stats.availability() * 100.0,
        (TOTAL_REQUESTS - OOM_REQUESTS.len() as u64) as f64 / TOTAL_REQUESTS as f64 * 100.0,
        stats.mismatches
    );
    println!(
        "{:8} {:>8} {:>8} {:>6} {:>10} {:>9} {:>12} {:>8}",
        "domain", "injected", "detected", "trips", "recoveries", "degraded", "recov-lat", "state"
    );
    let mut failures = Vec::new();
    for id in AccelId::ALL {
        let b = server.breaker(id);
        let i = id.index();
        let state = match b.state() {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "OPEN",
            BreakerState::HalfOpen => "half-open",
        };
        println!(
            "{:8} {:>8} {:>8} {:>6} {:>10} {:>9} {:>12} {:>8}",
            id.name(),
            injected[i],
            detected[i],
            b.trips,
            b.recoveries,
            stats.degraded_requests[i],
            b.last_recovery_latency
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            state
        );
        if detected[i] == 0 {
            failures.push(format!("{}: no faults detected", id.name()));
        }
        if b.trips == 0 {
            failures.push(format!("{}: breaker never tripped", id.name()));
        }
        if b.recoveries == 0 {
            failures.push(format!("{}: breaker never recovered", id.name()));
        }
        if b.state() != BreakerState::Closed {
            failures.push(format!("{}: breaker not closed at end", id.name()));
        }
    }

    if let Some(cache) = &memo_cache {
        let m = cache.stats();
        println!(
            "memo: entries {}  hits {}  misses {}  stores {}  invalidations {}",
            m.entries, m.hits, m.misses, m.stores, m.invalidations
        );
        if m.stores == 0 {
            failures.push("memo: no proven site ever stored".into());
        }
        if m.hits == 0 {
            failures.push("memo: warm tier never replayed a hit".into());
        }
    }

    let expected_ok = TOTAL_REQUESTS - OOM_REQUESTS.len() as u64;
    if stats.ok != expected_ok {
        failures.push(format!(
            "availability: {} ok, expected {}",
            stats.ok, expected_ok
        ));
    }
    if stats.mismatches != 0 {
        failures.push(format!(
            "{} degraded responses differed from baseline",
            stats.mismatches
        ));
    }
    for at in OOM_REQUESTS {
        if records[at as usize].outcome != RequestOutcome::OomKilled {
            failures.push(format!(
                "request {at}: expected OomKilled, got {:?}",
                records[at as usize].outcome
            ));
        }
    }
    if server
        .machine()
        .ctx()
        .with_allocator(|a| a.live_block_count())
        != 0
    {
        failures.push("allocator leaked live blocks".into());
    }

    if failures.is_empty() {
        println!("SOAK PASS: all requests served, all breakers tripped and recovered, output byte-identical");
    } else {
        for f in &failures {
            println!("SOAK FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// The overload soak: the same fault-injected request mix pushed through
/// the admission-controlled queue at ~2× calibrated capacity with a shaped
/// arrival schedule. Machines are not reset between requests (faults land
/// in live state); `workers` is the *simulated* drain capacity.
fn run_overload(
    seed: u64,
    workers: usize,
    arena: bool,
    engine: Option<Engine>,
    scripts: Option<Arc<CorpusCache>>,
    memo_cache: Option<Arc<MemoCache>>,
    shape: ArrivalShape,
) {
    let make_machine = || {
        let mut m = PhpMachine::specialized();
        if let Some(e) = engine {
            m.set_engine(e);
        }
        if arena {
            m.ctx().set_arena_enabled(true);
        }
        m
    };

    // Calibrate steady-state service cost of the soak mix (no faults, warm
    // requests only, memo off so capacity is measured at full cost) to
    // scale the arrival gaps and the latency budget.
    let (mean, smax) = {
        let mut server = Server::new(make_machine(), breaker_cfg(), sandbox());
        let mut app = SoakApp::new(arena, scripts.clone(), None);
        let mut h = |m: &mut PhpMachine, req: u64| app.handle(m, req);
        let (mut total, mut max, mut n) = (0u64, 0u64, 0u64);
        for i in 0..12u64 {
            let before = server.machine().ctx().profiler().total_uops();
            server.serve(&mut h);
            let after = server.machine().ctx().profiler().total_uops();
            if i >= 2 {
                let s = after - before;
                total += s;
                max = max.max(s);
                n += 1;
            }
        }
        (total / n.max(1), max)
    };

    let plan = build_plan(seed, 4);
    let planned = plan.all().len();
    let server = Server::new(make_machine(), breaker_cfg(), sandbox())
        .with_fault_plan(plan)
        .with_reference(PhpMachine::baseline())
        .with_keep_bodies(false);
    // The budget tolerates a short queue above the conservative service
    // envelope; faults degrade requests to the software path, so leave
    // more headroom than the deterministic bench does.
    let budget = (6 * mean).max(3 * smax);
    let controller = AdmissionController::new(AdmissionConfig {
        budget_uops: budget,
        queue_capacity: 4 * workers,
        release_ratio: 0.5,
        service_prior_uops: smax,
    });
    // Warmup indices 0..8 stay below the fault burn-in (20), so the fault
    // schedule lands entirely in the measured arrival stream.
    let warmup = 8usize;
    let mut sim = OverloadSim::new(
        OverloadConfig {
            workers,
            warmup,
            slo_windows: 10,
            reset_between_requests: false,
        },
        server,
        controller,
    )
    .expect("valid overload config");
    // ~2× offered load on average; the shape modulates the instantaneous
    // rate around that (flash-crowd spikes to ~10×).
    let schedule = ArrivalConfig {
        shape,
        requests: (TOTAL_REQUESTS - warmup as u64) as usize,
        mean_gap_uops: (mean / (2 * workers as u64)).max(1),
        seed,
    }
    .times();

    let tier = memo_cache.clone().map(|c| c as Arc<dyn MemoTier>);
    let mut app = SoakApp::new(arena, scripts, tier);
    let mut handler = |m: &mut PhpMachine, req: u64| app.handle(m, req);
    std::panic::set_hook(Box::new(|_| {}));
    let report = sim.run(&schedule, &mut handler);
    let _ = std::panic::take_hook();

    let stats = &report.stats;
    let admitted = stats.requests - stats.shed;
    println!(
        "== soak: overload survival (seed {seed}, shape {}, {workers} simulated workers) ==",
        shape.name()
    );
    println!(
        "arrivals {}  admitted {}  shed {} ({:.1}%)  ok {}  ooms {}  planned faults {}",
        stats.requests,
        admitted,
        stats.shed,
        report.shed_fraction() * 100.0,
        stats.ok,
        stats.ooms,
        planned
    );
    println!(
        "admitted availability {:.2}%  SLO attainment {:.3}  p50 {}  p99 {} uops (budget {budget})",
        stats.availability() * 100.0,
        report.slo_attainment(),
        report.latency_percentile(50.0),
        report.latency_percentile(99.0),
    );
    println!(
        "admission: engages {}  releases {}  shed over-budget {}  shed queue-full {}  \
         min window attainment {:.3}",
        report.admission.engages,
        report.admission.releases,
        report.admission.shed_over_budget,
        report.admission.shed_queue_full,
        report
            .windows
            .iter()
            .map(|w| w.attainment())
            .fold(f64::INFINITY, f64::min)
    );

    let mut failures = Vec::new();
    if let Some(cache) = &memo_cache {
        let m = cache.stats();
        println!(
            "memo: entries {}  hits {}  misses {}  stores {}  invalidations {}",
            m.entries, m.hits, m.misses, m.stores, m.invalidations
        );
        if m.stores == 0 {
            failures.push("memo: no proven site ever stored".into());
        }
        if m.hits == 0 {
            failures.push("memo: warm tier never replayed a hit".into());
        }
    }
    if stats.shed == 0 {
        failures.push("2x offered load never shed anything".to_string());
    }
    if !stats.outcomes_partition_requests() {
        failures.push("outcome counters do not partition the arrivals".into());
    }
    if stats.mismatches != 0 {
        failures.push(format!(
            "{} degraded responses differed from baseline",
            stats.mismatches
        ));
    }
    // Every admitted request must succeed except the planned OOM kills
    // (shed arrivals postpone a due fault to the next *admitted* request,
    // so both OOMs still land).
    if stats.ooms != OOM_REQUESTS.len() as u64 {
        failures.push(format!(
            "planned OOM kills: {} landed, expected {}",
            stats.ooms,
            OOM_REQUESTS.len()
        ));
    }
    if stats.ok + stats.ooms != admitted {
        failures.push(format!(
            "admitted requests must all serve or OOM-kill: ok {} + ooms {} != admitted {admitted}",
            stats.ok, stats.ooms
        ));
    }
    let detected = sim.server().machine().detected_fault_counts();
    for id in AccelId::ALL {
        let b = sim.server().breaker(id);
        if detected[id.index()] == 0 {
            failures.push(format!("{}: no faults detected under shedding", id.name()));
        }
        if b.trips == 0 {
            failures.push(format!("{}: breaker never tripped", id.name()));
        }
        if b.recoveries == 0 {
            failures.push(format!("{}: breaker never recovered", id.name()));
        }
        if b.state() != BreakerState::Closed {
            failures.push(format!("{}: breaker not closed at end", id.name()));
        }
    }

    if failures.is_empty() {
        println!(
            "SOAK PASS (overload): shed early, admitted requests all served, \
             breakers recovered, output byte-identical"
        );
    } else {
        for f in &failures {
            println!("SOAK FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// The threaded soak: the same request stream sharded across a worker pool,
/// with the fault plan densified so each worker's shard still trips its
/// breakers, and the pass criteria asserted on the merged totals.
fn run_pool(
    seed: u64,
    workers: usize,
    arena: bool,
    engine: Option<Engine>,
    scripts: Option<Arc<CorpusCache>>,
    memo_cache: Option<Arc<MemoCache>>,
) {
    let plan = build_plan(seed, 4 * workers);
    let planned = plan.all().len();
    let cfg = PoolConfig {
        workers,
        requests: TOTAL_REQUESTS,
        breaker_cfg: breaker_cfg(),
        sandbox: sandbox(),
        plan,
        reference: true,
        // Faults must land in live accelerator state, so machines keep their
        // history across requests (unlike the deterministic bench mode).
        reset_between_requests: false,
        keep_bodies: false,
        arena,
        memo: memo_cache.clone(),
    };
    let pool = WorkerPool::new(cfg);

    std::panic::set_hook(Box::new(|_| {}));
    let tier = memo_cache.map(|c| c as Arc<dyn MemoTier>);
    let report = pool.run(
        |_| {
            let mut m = PhpMachine::specialized();
            if let Some(e) = engine {
                m.set_engine(e);
            }
            m
        },
        |_w| {
            let mut app = SoakApp::new(arena, scripts.clone(), tier.clone());
            move |m: &mut PhpMachine, req: u64| app.handle(m, req)
        },
    );
    let _ = std::panic::take_hook();

    let stats = &report.stats;
    println!("== soak: fault-tolerant serving (seed {seed}, {workers} workers) ==");
    println!(
        "requests {}  ok {}  timeouts {}  ooms {}  panics {}  planned faults {}",
        stats.requests, stats.ok, stats.timeouts, stats.ooms, stats.panics, planned
    );
    println!(
        "availability {:.2}% (expected {:.2}%)  byte mismatches vs software baseline: {}",
        stats.availability() * 100.0,
        (TOTAL_REQUESTS - OOM_REQUESTS.len() as u64) as f64 / TOTAL_REQUESTS as f64 * 100.0,
        stats.mismatches
    );
    println!(
        "{:8} {:>8} {:>8} {:>6} {:>10} {:>9}",
        "domain", "injected", "detected", "trips", "recoveries", "degraded"
    );
    let mut failures = Vec::new();
    for id in AccelId::ALL {
        let i = id.index();
        println!(
            "{:8} {:>8} {:>8} {:>6} {:>10} {:>9}",
            id.name(),
            report.injected[i],
            report.detected[i],
            report.trips[i],
            report.recoveries[i],
            stats.degraded_requests[i],
        );
        if report.detected[i] == 0 {
            failures.push(format!("{}: no faults detected on any worker", id.name()));
        }
        if report.trips[i] == 0 {
            failures.push(format!("{}: no breaker tripped on any worker", id.name()));
        }
        if report.recoveries[i] == 0 {
            failures.push(format!("{}: no breaker recovered on any worker", id.name()));
        }
    }
    if !report.all_breakers_closed {
        failures.push("a breaker is not closed at end of run".into());
    }

    if !stats.outcomes_partition_requests() {
        failures.push("outcome counters do not partition the request count".into());
    }
    if let Some(m) = &report.memo {
        println!(
            "memo: entries {}  hits {}  misses {}  stores {}  invalidations {}  \
             (worker-side hits {}  misses {})",
            m.entries,
            m.hits,
            m.misses,
            m.stores,
            m.invalidations,
            stats.memo_hits,
            stats.memo_misses
        );
        if m.stores == 0 {
            failures.push("memo: no proven site ever stored".into());
        }
        if m.hits == 0 {
            failures.push("memo: warm tier never replayed a hit".into());
        }
    }
    let expected_ok = TOTAL_REQUESTS - OOM_REQUESTS.len() as u64;
    if stats.ok != expected_ok {
        failures.push(format!(
            "availability: {} ok, expected {}",
            stats.ok, expected_ok
        ));
    }
    if stats.mismatches != 0 {
        failures.push(format!(
            "{} degraded responses differed from baseline",
            stats.mismatches
        ));
    }
    for at in OOM_REQUESTS {
        if report.records[at as usize].outcome != RequestOutcome::OomKilled {
            failures.push(format!(
                "request {at}: expected OomKilled, got {:?}",
                report.records[at as usize].outcome
            ));
        }
    }
    if report.records.iter().any(|r| !r.response.is_empty()) {
        failures.push("response bodies retained despite keep_bodies = false".into());
    }
    if report.live_blocks != 0 {
        failures.push(format!(
            "worker machines leaked {} live blocks",
            report.live_blocks
        ));
    }

    if failures.is_empty() {
        println!(
            "SOAK PASS ({workers} workers): merged stats clean, every domain detected, tripped and recovered"
        );
    } else {
        for f in &failures {
            println!("SOAK FAIL: {f}");
        }
        std::process::exit(1);
    }
}
