//! `soak` — fault-injection soak of the fault-tolerant request server.
//!
//! Drives a deterministic request mix that exercises all four accelerator
//! domains (hash table, heap manager, string unit, regexp engine) through a
//! [`serve::Server`] with a seeded [`serve::FaultPlan`] covering every
//! domain plus forced allocator OOMs, while byte-comparing each successful
//! response against an all-software reference machine.
//!
//! The run fails (exit 1) unless:
//!
//! * every request completes — availability is exactly the planned value
//!   (only the scheduled OOM requests fail);
//! * each domain's faults were detected and tripped its circuit breaker;
//! * each breaker recovered (half-open trial succeeded) and ends closed;
//! * every successful response is byte-identical to the software baseline.
//!
//! Usage: `soak [seed]` (default seed 20170613).

use php_runtime::{ArrayKey, PhpArray, PhpStr, PhpValue};
use phpaccel_core::{AccelId, PhpMachine};
use regex_engine::Regex;
use serve::{
    BreakerConfig, BreakerState, FaultKind, FaultPlan, PlannedFault, RequestOutcome, SandboxConfig,
    Server,
};
use std::collections::HashMap;

const TOTAL_REQUESTS: u64 = 300;
const BURN_IN: u64 = 20;
const LAST_FAULT: u64 = 220;
const OOM_REQUESTS: [u64; 2] = [60, 150];

/// The request mix: every domain is touched every request, so an injected
/// fault is detected on (or immediately after) the request it lands on, and
/// a half-open trial genuinely exercises the hardware path it is probing.
struct SoakApp {
    rules: Vec<(Regex, Vec<u8>)>,
    author_re: Regex,
    /// One persistent array per machine (primary and reference), keyed by
    /// machine address: entries stay live in the hardware hash table across
    /// requests so injected corruption has something to land on.
    arrays: HashMap<usize, PhpArray>,
}

impl SoakApp {
    fn new() -> Self {
        SoakApp {
            rules: vec![
                (Regex::new("'").unwrap(), b"&#8217;".to_vec()),
                (Regex::new("\"").unwrap(), b"&#8221;".to_vec()),
                (Regex::new("<br>").unwrap(), b"<br/>".to_vec()),
            ],
            author_re: Regex::new("https://localhost/\\?author=[a-z]+").unwrap(),
            arrays: HashMap::new(),
        }
    }

    fn handle(&mut self, m: &mut PhpMachine, req: u64) -> Vec<u8> {
        let mut out = Vec::new();

        // Heap churn: varied request-scoped sizes so free lists stay
        // populated (scoped blocks are reclaimed even when the request is
        // OOM-killed mid-churn).
        for i in 0..6 {
            m.alloc_scoped(48 + ((req as usize * 13 + i * 37) % 200));
        }

        // Hash-table traffic against the persistent map.
        let mkey = m as *const PhpMachine as usize;
        let arr = self.arrays.entry(mkey).or_insert_with(|| m.new_array());
        for k in 0..6u64 {
            m.array_set(
                arr,
                ArrayKey::Str(format!("key{k}").into()),
                PhpValue::Int((req * 7 + k) as i64),
            );
        }
        for k in 0..6u64 {
            let v = m.array_get(arr, &ArrayKey::Str(format!("key{k}").into()));
            out.extend_from_slice(format!("{v:?};").as_bytes());
        }
        out.extend_from_slice(format!("n={};", m.foreach(arr).len()).as_bytes());

        // String pipeline.
        let s: PhpStr = format!("  <b>Request #{req}</b> & 'friends'  ").into();
        let t = m.trim(&s);
        let lower = m.strtolower(&t);
        let esc = m.htmlspecialchars(&lower);
        let (rep, nrep) = m.str_replace(b"e", b"3", &esc);
        out.extend_from_slice(rep.as_bytes());
        out.extend_from_slice(format!(";r={nrep};p={};", m.explode(b" ", &esc).len()).as_bytes());

        // Regexp engine: texturize (hint vectors) + content reuse.
        let content: PhpStr = format!("Post {req} says 'hi' and \"bye\"<br>fin {}", req % 9).into();
        let tex = m.texturize(&content, &self.rules);
        // The hardware pipeline pads replacements with spaces to keep the
        // hint vector segment-aligned (Figure 11) — that is modeled,
        // intentional skew, so the response folds the padding out before
        // the byte-identity comparison.
        out.extend(tex.as_bytes().iter().copied().filter(|&b| b != b' '));
        let url: PhpStr = format!(
            "https://localhost/?author={}",
            (b'a' + (req % 26) as u8) as char
        )
        .into();
        let hit = m.match_with_reuse(0x4010_0000, &self.author_re, &url);
        out.extend_from_slice(format!(";a={hit:?}").as_bytes());

        m.end_request();
        out
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_170_613);

    // Seeded plan over every accelerator domain, plus two forced OOMs.
    let mut faults = FaultPlan::seeded(seed, 4, BURN_IN, LAST_FAULT)
        .all()
        .to_vec();
    for at in OOM_REQUESTS {
        faults.push(PlannedFault {
            at_request: at,
            kind: FaultKind::AllocatorOom,
        });
    }
    let plan = FaultPlan::new(faults);
    let planned = plan.all().len();

    // Window spans the whole fault phase so every domain accumulates enough
    // marks to trip; backoff is short enough to recover well before the end.
    let breaker_cfg = BreakerConfig {
        fault_threshold: 2,
        window: LAST_FAULT,
        base_backoff: 10,
        max_backoff: 40,
    };
    let sandbox = SandboxConfig {
        fuel: None,
        uop_budget: Some(50_000_000),
        memory_limit: Some(64 << 20),
    };

    let mut server = Server::new(PhpMachine::specialized(), breaker_cfg, sandbox)
        .with_fault_plan(plan)
        .with_reference(PhpMachine::baseline());

    let mut app = SoakApp::new();
    let mut handler = |m: &mut PhpMachine, req: u64| app.handle(m, req);

    // Expected panics (forced OOMs) would otherwise spam stderr.
    std::panic::set_hook(Box::new(|_| {}));
    let records = server.serve_many(TOTAL_REQUESTS, &mut handler);
    let _ = std::panic::take_hook();

    let stats = server.stats().clone();
    let injected = server.machine().injected_fault_counts();
    let detected = server.machine().detected_fault_counts();

    println!("== soak: fault-tolerant serving (seed {seed}) ==");
    println!(
        "requests {}  ok {}  timeouts {}  ooms {}  panics {}  planned faults {}",
        stats.requests, stats.ok, stats.timeouts, stats.ooms, stats.panics, planned
    );
    println!(
        "availability {:.2}% (expected {:.2}%)  byte mismatches vs software baseline: {}",
        stats.availability() * 100.0,
        (TOTAL_REQUESTS - OOM_REQUESTS.len() as u64) as f64 / TOTAL_REQUESTS as f64 * 100.0,
        stats.mismatches
    );
    println!(
        "{:8} {:>8} {:>8} {:>6} {:>10} {:>9} {:>12} {:>8}",
        "domain", "injected", "detected", "trips", "recoveries", "degraded", "recov-lat", "state"
    );
    let mut failures = Vec::new();
    for id in AccelId::ALL {
        let b = server.breaker(id);
        let i = id.index();
        let state = match b.state() {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "OPEN",
            BreakerState::HalfOpen => "half-open",
        };
        println!(
            "{:8} {:>8} {:>8} {:>6} {:>10} {:>9} {:>12} {:>8}",
            id.name(),
            injected[i],
            detected[i],
            b.trips,
            b.recoveries,
            stats.degraded_requests[i],
            b.last_recovery_latency
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            state
        );
        if detected[i] == 0 {
            failures.push(format!("{}: no faults detected", id.name()));
        }
        if b.trips == 0 {
            failures.push(format!("{}: breaker never tripped", id.name()));
        }
        if b.recoveries == 0 {
            failures.push(format!("{}: breaker never recovered", id.name()));
        }
        if b.state() != BreakerState::Closed {
            failures.push(format!("{}: breaker not closed at end", id.name()));
        }
    }

    let expected_ok = TOTAL_REQUESTS - OOM_REQUESTS.len() as u64;
    if stats.ok != expected_ok {
        failures.push(format!(
            "availability: {} ok, expected {}",
            stats.ok, expected_ok
        ));
    }
    if stats.mismatches != 0 {
        failures.push(format!(
            "{} degraded responses differed from baseline",
            stats.mismatches
        ));
    }
    for at in OOM_REQUESTS {
        if records[at as usize].outcome != RequestOutcome::OomKilled {
            failures.push(format!(
                "request {at}: expected OomKilled, got {:?}",
                records[at as usize].outcome
            ));
        }
    }
    if server
        .machine()
        .ctx()
        .with_allocator(|a| a.live_block_count())
        != 0
    {
        failures.push("allocator leaked live blocks".into());
    }

    if failures.is_empty() {
        println!("SOAK PASS: all requests served, all breakers tripped and recovered, output byte-identical");
    } else {
        for f in &failures {
            println!("SOAK FAIL: {f}");
        }
        std::process::exit(1);
    }
}
