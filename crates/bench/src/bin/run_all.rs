//! Regenerates every table and figure by invoking each experiment binary's
//! logic is impractical across processes; instead this driver lists the
//! experiment inventory and shells nothing — run each `fig*`/`tab*` binary
//! individually, or use this as an index.

fn main() {
    println!("phpaccel experiment inventory (run with: cargo run --release -p bench --bin <name>)");
    for (bin, what) in [
        (
            "fig01_profiles",
            "Figure 1 — leaf-function cycle distributions",
        ),
        ("fig02_branch_mpki", "§2 — TAGE MPKI, PHP vs SPEC"),
        ("fig02a_btb", "Figure 2(a) — BTB sweep × I-cache sizes"),
        ("fig02b_caches", "Figure 2(b) — cache MPKI"),
        ("fig02c_width", "Figure 2(c) — in-order vs OoO width"),
        (
            "fig03_priors",
            "Figure 3 — prior optimizations on WordPress leaves",
        ),
        (
            "fig04_categories",
            "Figure 4 — leaf-function categorization",
        ),
        (
            "fig05_breakdown",
            "Figure 5 — post-priors category breakdown",
        ),
        (
            "fig07_htable_hitrate",
            "Figure 7 — hash table hit rate vs entries",
        ),
        (
            "fig08_memusage",
            "Figure 8 — alloc-size CDF + live-memory timeline",
        ),
        (
            "fig12_sifting",
            "Figure 12 — sifting/reuse skip opportunity",
        ),
        ("fig14_exectime", "Figure 14 — normalized execution time"),
        (
            "fig15_accel_breakdown",
            "Figure 15 — per-accelerator benefit split",
        ),
        (
            "soak",
            "robustness — fault-injection soak of the request server",
        ),
        ("tab_energy", "§5.2 — energy savings"),
        ("tab_uops", "§5.2 — software µop costs"),
        ("tab_area", "§5.1 — area budget"),
    ] {
        println!("  {bin:24} {what}");
    }
}
