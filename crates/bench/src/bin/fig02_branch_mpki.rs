//! §2 branch-predictor characterization.
//!
//! Paper: TAGE (32 KB) MPKI on the three PHP apps is 17.26 / 14.48 / 15.14
//! versus ≈2.9 for SPEC CPU2006-class code; PHP apps have ~22 % branches
//! vs ~12 % — the culprit is data-dependent branches.

use bench::{header, row};
use uarch_sim::core_model::{simulate, CoreKind, Machine};
use uarch_sim::trace::{count, synthesize};
use workloads::AppKind;

fn main() {
    header(
        "§2 — branch MPKI (TAGE 32KB)",
        "PHP apps 14.5-17.3 MPKI vs SPEC ≈ 2.9; branch share 22% vs 12%",
    );
    let widths = [18, 12, 10, 12];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "branch-frac".into(),
                "MPKI".into(),
                "BTB-hit".into()
            ],
            &widths
        )
    );
    for kind in [
        AppKind::WordPress,
        AppKind::Drupal,
        AppKind::MediaWiki,
        AppKind::SpecWebBanking,
    ] {
        let profile = kind.trace_profile(0xB2);
        let trace = synthesize(&profile, 600_000);
        let c = count(&trace);
        let mut m = Machine::server(CoreKind::OoO4);
        let r = simulate(&trace, &mut m);
        println!(
            "{}",
            row(
                &[
                    kind.label().into(),
                    format!("{:.1}%", c.branches as f64 / c.uops as f64 * 100.0),
                    format!("{:.2}", r.branch_mpki()),
                    format!("{:.2}%", m.btb.stats().hit_rate() * 100.0),
                ],
                &widths
            )
        );
    }
}
