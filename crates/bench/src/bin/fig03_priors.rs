//! Figure 3: effect of the prior optimizations on WordPress leaf functions.
//!
//! Paper: "the contribution of many leaf functions diminishes with these
//! optimizations [...] the contributions of the remaining functions in the
//! overall distribution have gone up." Refcounting reduction contributes
//! the most of the 11.85 % total (4.42 % on average).

use bench::{header, pct, row, run_app, standard_load};
use phpaccel_core::priors::{apply, PriorOpt};
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "Figure 3 — leaf functions before/after prior optimizations (WordPress)",
        "priors shrink targeted functions; refcounting saves the most (≈4.42%)",
    );
    let cfg = MachineConfig::default();
    let m = run_app(
        AppKind::WordPress,
        ExecMode::Baseline,
        cfg.clone(),
        standard_load(),
        0xF03,
    );
    let out = apply(m.ctx().profiler(), &cfg.priors);
    println!(
        "total µops: before={} after={} (remaining {})\n",
        out.uops_before,
        out.uops_after,
        pct(out.remaining_fraction())
    );
    println!("savings by optimization:");
    for opt in [
        PriorOpt::HwRefcount,
        PriorOpt::CheckedLoad,
        PriorOpt::IcHmi,
        PriorOpt::AllocTuning,
    ] {
        let saved = out.saved_by.get(&opt).copied().unwrap_or(0);
        println!(
            "  {:22} {}",
            opt.label(),
            pct(saved as f64 / out.uops_before as f64)
        );
    }
    println!("\ntop-15 leaf functions, share before → after:");
    let widths = [26, 10, 10, 8];
    println!(
        "{}",
        row(
            &[
                "function".into(),
                "before".into(),
                "after".into(),
                "delta".into()
            ],
            &widths
        )
    );
    for r_before in out.before.iter().take(15) {
        let r_after = out
            .after
            .iter()
            .find(|r| r.name == r_before.name)
            .expect("same set");
        let arrow = if r_after.share < r_before.share - 0.002 {
            "↓"
        } else if r_after.share > r_before.share + 0.002 {
            "↑"
        } else {
            "="
        };
        println!(
            "{}",
            row(
                &[
                    r_before.name.clone(),
                    pct(r_before.share),
                    pct(r_after.share),
                    arrow.into()
                ],
                &widths
            )
        );
    }
}
