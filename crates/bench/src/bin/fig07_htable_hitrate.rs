//! Figure 7: hardware hash-table hit rate vs entry count.
//!
//! Paper: "Even a hash table with only 256 entries observes a high hit rate
//! of about 80%. Since SET operations never miss in our design, a hash
//! table with very few entries (1, 2 or 4) shows such a decent hit rate."
//! Also §4.2: SET share is 15-25 %, and ~95 % of keys are ≤ 24 bytes.

use accel_htable::HtConfig;
use bench::{header, row, standard_load};
use phpaccel_core::{ExecMode, MachineConfig, PhpMachine};
use workloads::AppKind;

fn main() {
    header(
        "Figure 7 — hash table hit rate vs entries",
        "256 entries ≈ 80%; tiny tables decent because SETs never miss",
    );
    let sizes = [1usize, 2, 4, 16, 64, 256, 512, 1024];
    let mut widths = vec![12];
    widths.extend(std::iter::repeat_n(8, sizes.len()));
    widths.push(10);
    let mut head = vec!["app".to_string()];
    head.extend(sizes.iter().map(|s| s.to_string()));
    head.push("SET-share".into());
    println!("{}", row(&head, &widths));
    for kind in AppKind::PHP_APPS {
        let mut cells = vec![kind.label().to_string()];
        let mut set_share = 0.0;
        for &entries in &sizes {
            let cfg = MachineConfig {
                htable: HtConfig {
                    entries,
                    probe_width: entries.min(4),
                    ..HtConfig::default()
                },
                ..MachineConfig::default()
            };
            let mut app = kind.build(0xF07);
            let mut m = PhpMachine::new(ExecMode::Specialized, cfg);
            standard_load().run(app.as_mut(), &mut m);
            let st = m.core().htable.stats();
            cells.push(format!("{:.0}%", st.hit_rate() * 100.0));
            set_share = st.set_share();
        }
        cells.push(format!("{:.1}%", set_share * 100.0));
        println!("{}", row(&cells, &widths));
    }
}
