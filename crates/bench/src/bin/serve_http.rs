//! `serve_http` — boot the HTTP/1.1 front end over the worker pool.
//!
//! Binds a `std::net` listener, spawns the acceptor + worker threads, and
//! serves the corpus over `GET /run/<script>` plus `/health` and
//! `/metrics` until killed. The port is printed on stdout (and flushed)
//! before blocking, so scripts can parse it from the first line.
//!
//! Usage:
//!   serve_http [--addr HOST:PORT] [--workers N] [--engine treewalk|vm]
//!              [--faults SEED] [--memo] [--queue N]

use serve::{FaultPlan, HttpConfig, HttpServer, MemoCache};
use std::io::Write;
use std::sync::Arc;
use workloads::php_corpus::CorpusCache;

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers: usize = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers takes a positive integer"))
        .unwrap_or(2);
    let mut cfg = HttpConfig::loopback(workers);
    if let Some(addr) = arg_value(&args, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(engine) = arg_value(&args, "--engine") {
        cfg.engine = match engine {
            "treewalk" => phpaccel_core::Engine::TreeWalk,
            "vm" => phpaccel_core::Engine::Vm,
            other => panic!("unknown engine {other:?} (expected treewalk|vm)"),
        };
    }
    if let Some(seed) = arg_value(&args, "--faults") {
        let seed: u64 = seed.parse().expect("--faults takes a u64 seed");
        cfg.plan = FaultPlan::seeded(seed, 2, 5, 200);
    }
    if args.iter().any(|a| a == "--memo") {
        cfg.memo = Some(Arc::new(MemoCache::new(16)));
    }
    if let Some(queue) = arg_value(&args, "--queue") {
        cfg.queue_capacity = queue.parse().expect("--queue takes a positive integer");
    }

    let corpus = Arc::new(CorpusCache::build());
    let server = HttpServer::start(cfg, Arc::clone(&corpus)).expect("bind http front end");
    println!("serve_http: listening on http://{}", server.addr());
    println!(
        "serve_http: {} workers, {} corpus scripts under /run/, /health and /metrics live",
        workers,
        corpus.len()
    );
    std::io::stdout().flush().expect("flush stdout");

    // Serve until killed; the handle keeps the acceptor + workers alive.
    loop {
        std::thread::park();
    }
}
