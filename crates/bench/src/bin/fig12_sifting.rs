//! Figure 12: opportunity from content sifting and content reuse.
//!
//! Paper: the y-axis is the percentage of total textual content the
//! regexps can skip processing via the two techniques; all three apps show
//! substantial opportunity (even Drupal, though it doesn't translate into
//! time there — Figure 15).

use bench::{header, pct, row, run_app, standard_load};
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "Figure 12 — % of content skippable via sifting / reuse",
        "large skippable fractions across apps",
    );
    let widths = [12, 12, 12, 12, 13, 12];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "bytes".into(),
                "sift-skip".into(),
                "reuse-skip".into(),
                "total-skip".into(),
                "shadows".into()
            ],
            &widths
        )
    );
    for kind in AppKind::PHP_APPS {
        let m = run_app(
            kind,
            ExecMode::Specialized,
            MachineConfig::default(),
            standard_load(),
            0xF12,
        );
        let s = m.core().regex_stats;
        let total = s.bytes_total.max(1) as f64;
        println!(
            "{}",
            row(
                &[
                    kind.label().into(),
                    s.bytes_total.to_string(),
                    pct(s.bytes_skipped_sift as f64 / total),
                    pct(s.bytes_skipped_reuse as f64 / total),
                    pct(s.skip_fraction()),
                    format!("{}/{}", s.shadow_skipping, s.shadow_calls),
                ],
                &widths
            )
        );
    }
}
