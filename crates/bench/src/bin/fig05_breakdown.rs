//! Figure 5: execution-time breakdown per application after mitigating the
//! abstraction overheads (§3).

use bench::{header, pct, row, run_app, standard_load};
use php_runtime::Category;
use phpaccel_core::priors::apply;
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "Figure 5 — post-priors execution-time breakdown per app",
        "sizable hash/heap/string/regex slices; Drupal shows the least opportunity",
    );
    let cfg = MachineConfig::default();
    let cats = Category::ALL;
    let mut widths = vec![12];
    widths.extend(std::iter::repeat_n(11, cats.len()));
    let mut head = vec!["app".to_string()];
    head.extend(cats.iter().map(|c| c.label().to_string()));
    println!("{}", row(&head, &widths));
    for kind in AppKind::PHP_APPS {
        let m = run_app(
            kind,
            ExecMode::Baseline,
            cfg.clone(),
            standard_load(),
            0xF05,
        );
        let out = apply(m.ctx().profiler(), &cfg.priors);
        let total = out.uops_after.max(1) as f64;
        let breakdown = out.category_breakdown_after();
        let mut cells = vec![kind.label().to_string()];
        for c in cats {
            cells.push(pct(breakdown.get(&c).copied().unwrap_or(0) as f64 / total));
        }
        println!("{}", row(&cells, &widths));
    }
}
