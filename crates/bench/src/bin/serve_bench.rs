//! `serve_bench` — multi-worker pool throughput and latency over the corpus.
//!
//! Drives [`serve::WorkerPool`] at 1/2/4/8 workers over the shared compile
//! cache (every corpus script parsed + analyzed once, executed by all
//! workers), verifies byte-identity of every response against the
//! single-worker reference run, and emits `BENCH_serve.json`.
//!
//! **Timing model.** The host has no spare cores to demonstrate wall-clock
//! parallelism, and the repo's methodology is simulated µops throughout
//! (every figure binary reports metered work, not host time). Workers model
//! the paper's per-core deployment: each owns a private machine, so the
//! pool's simulated elapsed time is the *busiest worker's* metered µops and
//! throughput scales with how evenly the stream shards. Latency percentiles
//! come from per-request µop deltas. Both are converted to seconds at a
//! nominal 1 µop/cycle, 2 GHz clock (the conversion cancels out of every
//! ratio the acceptance criteria check). Host wall-clock per run is also
//! reported for transparency.
//!
//! Usage: `serve_bench [--smoke] [--out PATH]`

use phpaccel_core::PhpMachine;
use serve::{PoolConfig, PoolReport, WorkerPool};
use std::sync::Arc;
use std::time::Instant;
use workloads::php_corpus::CorpusCache;

/// Nominal clock for µops → seconds conversion (1 µop per cycle).
const CLOCK_GHZ: f64 = 2.0;
/// Worker counts the bench sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Requests per run (full mode / --smoke).
const FULL_REQUESTS: u64 = 400;
const SMOKE_REQUESTS: u64 = 80;

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn uops_to_us(uops: u64) -> f64 {
    uops as f64 / (CLOCK_GHZ * 1_000.0)
}

struct RunResult {
    workers: usize,
    report: PoolReport,
    wall_ms: f64,
}

fn run(cache: &Arc<CorpusCache>, workers: usize, requests: u64) -> RunResult {
    let pool = WorkerPool::new(PoolConfig::deterministic(workers, requests));
    let cache = Arc::clone(cache);
    let start = Instant::now();
    let report = pool.run(
        |_| PhpMachine::specialized(),
        move |_w| {
            let cache = Arc::clone(&cache);
            move |m: &mut PhpMachine, req: u64| cache.script_for_request(req).run(m, true)
        },
    );
    RunResult {
        workers,
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };

    println!("serve_bench: building the shared compile cache...");
    let cache = Arc::new(CorpusCache::build());
    println!(
        "serve_bench: {} corpus scripts parsed + analyzed once; {} requests per run",
        cache.len(),
        requests
    );

    let mut results: Vec<RunResult> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let r = run(&cache, workers, requests);
        println!(
            "  {} worker(s): {} ok, {} replay mismatches, elapsed {} uops, wall {:.0} ms",
            workers,
            r.report.stats.ok,
            r.report.stats.mismatches,
            r.report.simulated_elapsed_uops(),
            r.wall_ms
        );
        results.push(r);
    }

    // Byte-identity: every multi-worker run must reproduce the single-worker
    // responses exactly, request for request.
    let reference = &results[0].report;
    let mut identity_mismatches = 0u64;
    for r in &results[1..] {
        for (a, b) in reference.records.iter().zip(&r.report.records) {
            if a.request != b.request || a.response != b.response {
                identity_mismatches += 1;
            }
        }
    }
    let replay_mismatches: u64 = results.iter().map(|r| r.report.stats.mismatches).sum();
    let mismatches = identity_mismatches + replay_mismatches;

    let base_elapsed = reference.simulated_elapsed_uops() as f64;
    let mut failures: Vec<String> = Vec::new();
    let mut runs_json = Vec::new();
    let mut speedup_at_4 = 0.0;
    for r in &results {
        let report = &r.report;
        let elapsed_uops = report.simulated_elapsed_uops();
        let secs = elapsed_uops as f64 / (CLOCK_GHZ * 1e9);
        let req_per_s = requests as f64 / secs;
        let speedup = base_elapsed / elapsed_uops as f64;
        if r.workers == 4 {
            speedup_at_4 = speedup;
        }
        let mut lat: Vec<u64> = report.service_uops.clone();
        lat.sort_unstable();
        let (p50, p95, p99) = (
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
        if report.stats.ok != requests {
            failures.push(format!(
                "{} workers: {} of {} requests ok",
                r.workers, report.stats.ok, requests
            ));
        }
        println!(
            "  {} worker(s): {:>12.0} req/s (sim), speedup {:.2}x, p50/p95/p99 = {:.1}/{:.1}/{:.1} us",
            r.workers,
            req_per_s,
            speedup,
            uops_to_us(p50),
            uops_to_us(p95),
            uops_to_us(p99)
        );
        runs_json.push(format!(
            "    {{\"workers\": {}, \"requests\": {}, \"ok\": {}, \"simulated_elapsed_uops\": {}, \
             \"req_per_s\": {:.1}, \"speedup_vs_1_worker\": {:.3}, \"p50_us\": {:.2}, \
             \"p95_us\": {:.2}, \"p99_us\": {:.2}, \"replay_mismatches\": {}, \"wall_clock_ms\": {:.1}}}",
            r.workers,
            requests,
            report.stats.ok,
            elapsed_uops,
            req_per_s,
            speedup,
            uops_to_us(p50),
            uops_to_us(p95),
            uops_to_us(p99),
            report.stats.mismatches,
            r.wall_ms
        ));
    }

    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} mismatches ({identity_mismatches} byte-identity, {replay_mismatches} replay)"
        ));
    }
    if speedup_at_4 < 1.5 {
        failures.push(format!(
            "simulated speedup at 4 workers is {speedup_at_4:.2}x, need >= 1.5x"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"model\": \"simulated-cores: elapsed = max over workers of metered uops; {} GHz nominal clock, 1 uop/cycle\",\n  \"corpus_scripts\": {},\n  \"requests_per_run\": {},\n  \"clock_ghz\": {:.1},\n  \"mismatches\": {},\n  \"speedup_at_4_workers\": {:.3},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        CLOCK_GHZ,
        cache.len(),
        requests,
        CLOCK_GHZ,
        mismatches,
        speedup_at_4,
        runs_json.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("serve_bench: wrote {out_path}");

    if failures.is_empty() {
        println!("serve_bench: PASS (mismatches == 0, 4-worker speedup {speedup_at_4:.2}x)");
    } else {
        for f in &failures {
            eprintln!("serve_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
