//! `alloc_bench` — arena/epoch allocation versus classic free lists.
//!
//! Drives the corpus through [`serve::WorkerPool`] at 1/2/4/8 workers under
//! a zipfian request mix (hot scripts dominate, like the paper's
//! trace-driven workloads), twice per worker count: once with the
//! allocator's classic free-list path and once with arena/epoch mode
//! enabled, where every allocation site the region analysis proved
//! request-scoped bump-allocates into a per-request epoch reclaimed in O(1)
//! at the request boundary.
//!
//! The run fails (exit 1) unless:
//!
//! * every response is byte-identical between the two modes, request for
//!   request, at every worker count;
//! * every multi-worker stream reproduces the single-worker stream exactly
//!   (pool determinism), in both modes;
//! * the per-request replay against each worker's all-software baseline
//!   reference reports zero mismatches (the references keep the free-list
//!   path, so arena runs are also cross-checked against classic
//!   allocation);
//! * arena mode reports a measurable teardown-µop reduction and reclaims a
//!   non-zero number of bytes, and no machine leaks live blocks.
//!
//! Results land in `BENCH_alloc.json`.
//!
//! Usage: `alloc_bench [--smoke] [--out PATH]`

use phpaccel_core::PhpMachine;
use serve::{PoolConfig, PoolReport, WorkerPool};
use std::sync::Arc;
use std::time::Instant;
use workloads::corpus::{Corpus, CorpusConfig};
use workloads::php_corpus::CorpusCache;

/// Worker counts the bench sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Requests per run (full mode / --smoke).
const FULL_REQUESTS: u64 = 400;
const SMOKE_REQUESTS: u64 = 80;

/// Zipfian request → script schedule, fixed up front so the mapping depends
/// only on the global request index (identical at every worker count).
fn zipf_schedule(requests: u64, scripts: usize) -> Arc<Vec<usize>> {
    let mut corpus = Corpus::new(CorpusConfig::default());
    Arc::new((0..requests).map(|_| corpus.zipf_pick(scripts)).collect())
}

struct RunResult {
    report: PoolReport,
    wall_ms: f64,
}

fn run(
    cache: &Arc<CorpusCache>,
    schedule: &Arc<Vec<usize>>,
    workers: usize,
    requests: u64,
    arena: bool,
) -> RunResult {
    let pool = WorkerPool::new(PoolConfig::deterministic(workers, requests).with_arena(arena));
    let cache = Arc::clone(cache);
    let schedule = Arc::clone(schedule);
    let start = Instant::now();
    let report = pool.run(
        |_| PhpMachine::specialized(),
        move |_w| {
            let cache = Arc::clone(&cache);
            let schedule = Arc::clone(&schedule);
            move |m: &mut PhpMachine, req: u64| cache.scripts()[schedule[req as usize]].run(m, true)
        },
    );
    RunResult {
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_alloc.json")
        .to_string();
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };

    println!("alloc_bench: building the shared compile cache...");
    let cache = Arc::new(CorpusCache::build());
    let schedule = zipf_schedule(requests, cache.len());
    println!(
        "alloc_bench: {} corpus scripts, {} zipfian requests per run",
        cache.len(),
        requests
    );

    let mut failures: Vec<String> = Vec::new();
    let mut runs_json = Vec::new();
    let mut identity_mismatches = 0u64;
    let mut replay_mismatches = 0u64;
    let mut reference_off: Option<RunResult> = None;
    let mut reference_on: Option<RunResult> = None;

    for &workers in &WORKER_COUNTS {
        let off = run(&cache, &schedule, workers, requests, false);
        let on = run(&cache, &schedule, workers, requests, true);

        // Arena on vs off: byte-identical request for request.
        for (a, b) in off.report.records.iter().zip(&on.report.records) {
            if a.request != b.request || a.response != b.response {
                identity_mismatches += 1;
            }
        }
        // Pool determinism: every stream matches the 1-worker stream of its
        // own mode.
        for (reference, r) in [(&reference_off, &off), (&reference_on, &on)] {
            if let Some(base) = reference {
                for (a, b) in base.report.records.iter().zip(&r.report.records) {
                    if a.request != b.request || a.response != b.response {
                        identity_mismatches += 1;
                    }
                }
            }
        }
        replay_mismatches += off.report.stats.mismatches + on.report.stats.mismatches;

        let off_uops = off.report.simulated_elapsed_uops();
        let on_uops = on.report.simulated_elapsed_uops();
        let s = &on.report.savings;
        println!(
            "  {} worker(s): elapsed {} -> {} uops ({:+.2}%), teardown-uops-saved {}, \
             arena-bytes-reclaimed {}, arena-safe-sites {}",
            workers,
            off_uops,
            on_uops,
            100.0 * (on_uops as f64 - off_uops as f64) / off_uops as f64,
            s.teardown_uops_saved,
            s.arena_bytes_reclaimed,
            s.arena_safe_sites,
        );

        if off.report.stats.ok != requests || on.report.stats.ok != requests {
            failures.push(format!(
                "{workers} workers: {}/{} (off/on) of {requests} requests ok",
                off.report.stats.ok, on.report.stats.ok
            ));
        }
        if s.teardown_uops_saved == 0 {
            failures.push(format!(
                "{workers} workers: no teardown uops saved in arena mode"
            ));
        }
        if s.arena_bytes_reclaimed == 0 {
            failures.push(format!("{workers} workers: no bytes arena-reclaimed"));
        }
        if off.report.live_blocks != 0 || on.report.live_blocks != 0 {
            failures.push(format!(
                "{workers} workers: leaked live blocks (off={}, on={})",
                off.report.live_blocks, on.report.live_blocks
            ));
        }

        runs_json.push(format!(
            "    {{\"workers\": {}, \"requests\": {}, \"ok\": {}, \
             \"elapsed_uops_free_list\": {}, \"elapsed_uops_arena\": {}, \
             \"teardown_uops_saved\": {}, \"arena_bytes_reclaimed\": {}, \
             \"arena_safe_sites\": {}, \"replay_mismatches\": {}, \
             \"wall_clock_ms\": {:.1}}}",
            workers,
            requests,
            on.report.stats.ok,
            off_uops,
            on_uops,
            s.teardown_uops_saved,
            s.arena_bytes_reclaimed,
            s.arena_safe_sites,
            off.report.stats.mismatches + on.report.stats.mismatches,
            off.wall_ms + on.wall_ms,
        ));
        if workers == 1 {
            reference_off = Some(off);
            reference_on = Some(on);
        }
    }

    let mismatches = identity_mismatches + replay_mismatches;
    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} mismatches ({identity_mismatches} byte-identity/determinism, \
             {replay_mismatches} replay)"
        ));
    }

    // Headline: teardown reduction at 4 workers (the paper's per-core sweet
    // spot), as saved teardown µops per request.
    let teardown_saved_total: u64 = reference_on
        .as_ref()
        .map(|r| r.report.savings.teardown_uops_saved)
        .unwrap_or(0);

    let json = format!(
        "{{\n  \"bench\": \"alloc\",\n  \"mode\": \"{}\",\n  \"model\": \"arena/epoch \
         allocation for region-analysis-proven request-scoped sites; O(1) epoch reset at \
         request end vs per-block free-list teardown\",\n  \"corpus_scripts\": {},\n  \
         \"requests_per_run\": {},\n  \"request_mix\": \"zipfian\",\n  \"mismatches\": {},\n  \
         \"teardown_uops_saved_at_1_worker\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cache.len(),
        requests,
        mismatches,
        teardown_saved_total,
        runs_json.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("alloc_bench: wrote {out_path}");

    if failures.is_empty() {
        println!("alloc_bench: PASS (mismatches == 0, teardown uops saved at every worker count)");
    } else {
        for f in &failures {
            eprintln!("alloc_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
