//! Figure 2(c): in-order vs out-of-order width sweep.
//!
//! Paper: in-order → OoO is a large jump; 4-wide clearly beats 2-wide
//! ("some ILP exists"); 8-wide gains < 3 % over 4-wide.

use bench::{header, row};
use uarch_sim::core_model::{simulate, CoreKind, Machine};
use uarch_sim::trace::synthesize;
use workloads::AppKind;

fn main() {
    header(
        "Figure 2(c) — execution time by core (normalized to 2-wide in-order)",
        "IO→OoO large; 4-wide ≫ 2-wide; 8-wide < 3% over 4-wide",
    );
    let widths = [18, 12, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "in-order-2".into(),
                "OoO-2".into(),
                "OoO-4".into(),
                "OoO-8".into()
            ],
            &widths
        )
    );
    for kind in AppKind::PHP_APPS {
        let trace = synthesize(&kind.trace_profile(0x2C), 600_000);
        let mut cells = vec![kind.label().to_string()];
        let mut base = None;
        let mut cyc4 = 0.0;
        let mut cyc8 = 0.0;
        for core in CoreKind::ALL {
            let mut m = Machine::server(core);
            let r = simulate(&trace, &mut m);
            let b = *base.get_or_insert(r.cycles as f64);
            cells.push(format!("{:.4}", r.cycles as f64 / b));
            if core == CoreKind::OoO4 {
                cyc4 = r.cycles as f64;
            }
            if core == CoreKind::OoO8 {
                cyc8 = r.cycles as f64;
            }
        }
        println!("{}", row(&cells, &widths));
        let gain8 = (1.0 - cyc8 / cyc4) * 100.0;
        println!("    8-wide gain over 4-wide: {gain8:.2}%");
    }
}
