//! `analyze` — static-analysis reports over the mini-PHP corpus.
//!
//! For every corpus script: per-function type-inference coverage, elidable
//! refcount counts, proven key shapes, and the four lint diagnostics
//! (use-before-assign, dead-store, type-guard, constant-condition). Each
//! script is then executed with and without its facts attached to verify the
//! outputs are byte-identical and to measure what the facts save (skipped
//! type checks, elided refcount ops, hinted hash-table operations).
//!
//! Usage: `analyze [--corpus APP]` where APP is one of the corpus
//! applications (e.g. `wordpress`); default is all of them. For
//! `wordpress` the full request workload is also driven through the load
//! generator with analysis enabled, showing the per-request savings.

use bench::{header, quick_load};
use phpaccel_core::PhpMachine;
use workloads::php_corpus;
use workloads::{WordPress, Workload};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut filter: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--corpus" => {
                filter = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--corpus requires an application name");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: analyze [--corpus APP]");
                std::process::exit(2);
            }
        }
    }

    let apps = match &filter {
        Some(app) => {
            if !php_corpus::apps().contains(&app.as_str()) {
                eprintln!(
                    "unknown corpus app {app:?}; known: {:?}",
                    php_corpus::apps()
                );
                std::process::exit(2);
            }
            vec![app.as_str()]
        }
        None => php_corpus::apps(),
    };

    header(
        "analyze — static specialization of the mini-PHP corpus",
        "type checks, refcount pairs, and hash stages removed before the \
         accelerators ever see them",
    );

    for app in &apps {
        for entry in php_corpus::for_app(app) {
            let prepared = php_corpus::prepare(entry);
            println!("\n── {}/{} ──", entry.app, entry.name);
            for scope in &prepared.report.scopes {
                println!("  {scope}");
            }
            if prepared.report.lints.is_empty() {
                println!("  lints: none");
            } else {
                for lint in &prepared.report.lints {
                    println!("  {lint}");
                }
            }

            // Execute twice — facts off, facts on — and verify equivalence.
            let mut off = PhpMachine::specialized();
            let mut on = PhpMachine::specialized();
            let plain = prepared.run(&mut off, false);
            let specialized = prepared.run(&mut on, true);
            if plain != specialized {
                eprintln!(
                    "FAIL: {}/{} output diverged with analysis on",
                    entry.app, entry.name
                );
                std::process::exit(1);
            }
            let s = on.ctx().profiler().static_savings();
            let ht = on.core().htable.stats();
            println!(
                "  verify: outputs byte-identical on/off ({} bytes)",
                plain.len()
            );
            println!(
                "  saved:  type-checks={} rc-incs={} rc-decs={} \
                 ht-hash-skips={} ht-append-inserts={}",
                s.type_checks_avoided,
                s.rc_incs_avoided,
                s.rc_decs_avoided,
                ht.hinted_hash_skips,
                ht.hinted_append_inserts,
            );
        }
    }

    if apps.contains(&"wordpress") {
        println!("\n── wordpress workload (load generator, analysis enabled) ──");
        let mut app = WordPress::new(0xA11A);
        app.enable_static_analysis();
        let mut m = PhpMachine::specialized();
        let summary = quick_load().run(&mut app, &mut m);
        let s = m.ctx().profiler().static_savings();
        let ht = m.core().htable.stats();
        println!(
            "  requests={} total-uops={}",
            summary.requests, summary.total_uops
        );
        println!(
            "  saved:  type-checks={} rc-incs={} rc-decs={} (total {})",
            s.type_checks_avoided,
            s.rc_incs_avoided,
            s.rc_decs_avoided,
            s.total(),
        );
        println!(
            "  htable: hinted-hash-skips={} hinted-append-inserts={}",
            ht.hinted_hash_skips, ht.hinted_append_inserts
        );
    }
}
