//! `analyze` — static-analysis reports over the mini-PHP corpus.
//!
//! For every corpus script: per-function type-inference coverage, elidable
//! refcount counts, proven key shapes, and the four lint diagnostics
//! (use-before-assign, dead-store, type-guard, constant-condition). Each
//! script is then executed with and without its facts attached to verify the
//! outputs are byte-identical and to measure what the facts save (skipped
//! type checks, elided refcount ops, hinted hash-table operations).
//!
//! Usage: `analyze [--corpus APP] [--gate ALLOWLIST]` where APP is one of
//! the corpus applications (e.g. `wordpress`); default is all of them. For
//! `wordpress` the full request workload is also driven through the load
//! generator with analysis enabled, showing the per-request savings.
//!
//! `--gate FILE` turns lints into errors: every lint must be covered by a
//! substring line in FILE (blank lines and `#` comments ignored), and the
//! run exits 1 listing any uncovered lint. `scripts/check.sh` uses this to
//! keep the corpus lint-clean modulo the intentional examples.

use bench::{header, quick_load};
use php_analysis::report::parse_allowlist;
use php_interp::{MemoTier, SimpleMemo, Vm};
use phpaccel_core::PhpMachine;
use std::sync::Arc;
use workloads::php_corpus;
use workloads::{WordPress, Workload};

/// Loads the gate allowlist through the lint-registry parser: one substring
/// per line, `#` comments allowed, `[kind]` prefixes validated against
/// [`php_analysis::LintKind::ALL`] so a typoed kind fails the run instead
/// of silently never matching.
fn load_allowlist(path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read allowlist {path}: {e}");
        std::process::exit(2);
    });
    parse_allowlist(&text).unwrap_or_else(|e| {
        eprintln!("bad allowlist {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut filter: Option<String> = None;
    let mut gate: Option<Vec<String>> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--corpus" => {
                filter = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--corpus requires an application name");
                    std::process::exit(2);
                }));
            }
            "--gate" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--gate requires an allowlist file");
                    std::process::exit(2);
                });
                gate = Some(load_allowlist(&path));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: analyze [--corpus APP] [--gate ALLOWLIST]");
                std::process::exit(2);
            }
        }
    }

    let apps = match &filter {
        Some(app) => {
            if !php_corpus::apps().contains(&app.as_str()) {
                eprintln!(
                    "unknown corpus app {app:?}; known: {:?}",
                    php_corpus::apps()
                );
                std::process::exit(2);
            }
            vec![app.as_str()]
        }
        None => php_corpus::apps(),
    };

    header(
        "analyze — static specialization of the mini-PHP corpus",
        "type checks, refcount pairs, and hash stages removed before the \
         accelerators ever see them",
    );

    let mut unallowed: Vec<String> = Vec::new();
    for app in &apps {
        for entry in php_corpus::for_app(app) {
            let prepared = php_corpus::prepare(entry);
            println!("\n── {}/{} ──", entry.app, entry.name);
            for scope in &prepared.report.scopes {
                println!("  {scope}");
            }
            if prepared.report.lints.is_empty() {
                println!("  lints: none");
            } else {
                for lint in &prepared.report.lints {
                    println!("  {lint}");
                    if let Some(allow) = &gate {
                        let line = lint.to_string();
                        if !allow.iter().any(|a| line.contains(a.as_str())) {
                            unallowed.push(format!("{}/{}: {line}", entry.app, entry.name));
                        }
                    }
                }
            }
            println!(
                "  interproc: summarized-calls={} preg-precompiled={}",
                prepared.report.summarized_calls(),
                prepared.report.preg_precompiled(),
            );

            // Effect summaries: the per-function verdicts the memo pass is
            // grounded in — transitive global read/write sets and the
            // purity lattice point, plus how many call sites were proven
            // memoizable on the strength of each row.
            for f in &prepared.report.effects {
                let mark = if f.opaque { " opaque" } else { "" };
                println!(
                    "  effect: {}() {}{mark} reads=[{}] writes=[{}] echoes={} memo-sites={}",
                    f.name,
                    f.purity.name(),
                    f.reads.join(","),
                    f.writes.join(","),
                    f.echoes,
                    f.memo_sites,
                );
            }

            // Execute twice — facts off, facts on — and verify equivalence.
            let mut off = PhpMachine::specialized();
            let mut on = PhpMachine::specialized();
            let plain = prepared.run(&mut off, false);
            let specialized = prepared.run(&mut on, true);
            if plain != specialized {
                eprintln!(
                    "FAIL: {}/{} output diverged with analysis on",
                    entry.app, entry.name
                );
                std::process::exit(1);
            }
            let s = on.ctx().profiler().static_savings();
            let ht = on.core().htable.stats();
            println!(
                "  verify: outputs byte-identical on/off ({} bytes)",
                plain.len()
            );
            println!(
                "  saved:  type-checks={} rc-incs={} rc-decs={} \
                 ht-hash-skips={} ht-append-inserts={}",
                s.type_checks_avoided,
                s.rc_incs_avoided,
                s.rc_decs_avoided,
                ht.hinted_hash_skips,
                ht.hinted_append_inserts,
            );
            println!(
                "  saved:  summaries-applied={} regex-compiles-avoided={} \
                 heap-classes-preseeded={} taint-lints={}",
                s.summaries_applied,
                s.regex_compiles_avoided,
                s.heap_classes_preseeded,
                s.taint_lints_flagged,
            );

            // Memoization demo: two requests against one cross-request
            // tier. The cold request stores at every proven site, the warm
            // one replays — and both must still print the memo-off bytes.
            let tier: Arc<dyn MemoTier> = Arc::new(SimpleMemo::new());
            let mut warm = (0, 0, 0, 0);
            for pass in ["cold", "warm"] {
                let mut m = PhpMachine::specialized();
                let out = prepared.run_memo(&mut m, true, Some(Arc::clone(&tier)));
                if out != plain {
                    eprintln!(
                        "FAIL: {}/{} output diverged with the memo tier ({pass})",
                        entry.app, entry.name
                    );
                    std::process::exit(1);
                }
                let ms = m.ctx().profiler().static_savings();
                warm = (
                    ms.memo_hits,
                    ms.memo_misses,
                    ms.memo_stores,
                    ms.memo_invalidations,
                );
            }
            println!(
                "  memo:   sites={} warm-request: hits={} misses={} \
                 stores={} invalidations={}",
                prepared.report.memo_sites(),
                warm.0,
                warm.1,
                warm.2,
                warm.3,
            );

            // Execute once more on the compiled-VM engine: verify the
            // bytes again and report the dynamic opcode mix — the top-10
            // opcodes and statically adjacent pairs are the data the
            // superinstruction selection in `php_interp::compile` is
            // grounded in.
            let mut vm_machine = PhpMachine::specialized();
            let unit = Arc::clone(prepared.vm_unit(true, true));
            let mut vm = Vm::new(&mut vm_machine, unit);
            if entry.needs_request_vars {
                php_corpus::bind_request_vars_vm(&mut vm);
            }
            if let Err(e) = vm.run() {
                eprintln!("FAIL: {}/{} vm run errored: {e:?}", entry.app, entry.name);
                std::process::exit(1);
            }
            if vm.take_output() != plain {
                eprintln!(
                    "FAIL: {}/{} output diverged on the vm engine",
                    entry.app, entry.name
                );
                std::process::exit(1);
            }
            let tally = vm.tally();
            println!(
                "  vm:     ops-executed={} fused-ops={} transients-elided={}",
                tally.total, tally.fused, tally.transients_elided,
            );
            let ops: Vec<String> = tally
                .top_ops()
                .into_iter()
                .take(10)
                .map(|(k, n)| format!("{}={n}", k.name()))
                .collect();
            println!("  vm-ops: {}", ops.join(" "));
            let pairs: Vec<String> = tally
                .top_pairs()
                .into_iter()
                .take(10)
                .map(|((a, b), n)| format!("{}+{}={n}", a.name(), b.name()))
                .collect();
            println!("  vm-pairs: {}", pairs.join(" "));
        }
    }

    if let Some(allow) = &gate {
        if unallowed.is_empty() {
            println!(
                "\ngate: all lints covered by the allowlist ({} patterns)",
                allow.len()
            );
        } else {
            eprintln!("\ngate: {} lint(s) not in the allowlist:", unallowed.len());
            for line in &unallowed {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    }

    if apps.contains(&"wordpress") {
        println!("\n── wordpress workload (load generator, analysis enabled) ──");
        let mut app = WordPress::new(0xA11A);
        app.enable_static_analysis();
        let mut m = PhpMachine::specialized();
        let summary = quick_load().run(&mut app, &mut m);
        let s = m.ctx().profiler().static_savings();
        let ht = m.core().htable.stats();
        println!(
            "  requests={} total-uops={}",
            summary.requests, summary.total_uops
        );
        println!(
            "  saved:  type-checks={} rc-incs={} rc-decs={} (total {})",
            s.type_checks_avoided,
            s.rc_incs_avoided,
            s.rc_decs_avoided,
            s.total(),
        );
        println!(
            "  saved:  summaries-applied={} regex-compiles-avoided={} \
             heap-classes-preseeded={} taint-lints={}",
            s.summaries_applied,
            s.regex_compiles_avoided,
            s.heap_classes_preseeded,
            s.taint_lints_flagged,
        );
        println!(
            "  htable: hinted-hash-skips={} hinted-append-inserts={}",
            ht.hinted_hash_skips, ht.hinted_append_inserts
        );
    }
}
