//! `http_bench` — loadgen-over-loopback throughput for the HTTP front end.
//!
//! Boots [`serve::HttpServer`] in-process at 1/2/4 workers, drives the
//! `std::net` loopback load generator across every corpus script's
//! `GET /run/<name>` route, and emits `BENCH_http.json`.
//!
//! Correctness gates baked into the run:
//! * every request completes with status 200 (admission and rate limiting
//!   are off, so nothing may shed);
//! * each path serves exactly one distinct body, byte-identical to serving
//!   the same script through a direct [`serve::Server`] (HTTP is a
//!   transport over the same execution seam, never a second path);
//! * every worker's reference replay agrees (`mismatches == 0`).
//!
//! Unlike the pool/overload benches, the timing here is honest wall-clock:
//! the requests traverse real sockets, threads, and queues. Per-request
//! service work is still metered in µops by the workers and exported via
//! `/metrics`; this bench reports end-to-end latency.
//!
//! Usage: `http_bench [--smoke] [--out PATH]`

use phpaccel_core::PhpMachine;
use serve::BreakerConfig;
use serve::{HttpConfig, HttpReport, HttpServer, SandboxConfig, Server};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use workloads::php_corpus::CorpusCache;
use workloads::{LoopbackConfig, LoopbackLoadGen, LoopbackReport};

/// Worker counts the bench sweeps.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// Requests each loadgen client issues (full mode / --smoke).
const FULL_PER_CLIENT: usize = 120;
const SMOKE_PER_CLIENT: usize = 20;
/// Loadgen client threads.
const CLIENTS: usize = 4;

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Serves every corpus script once through a direct [`Server`] (same
/// engine, reference replay, reset between requests) and returns
/// path → expected response bytes.
fn direct_expected(corpus: &CorpusCache) -> BTreeMap<String, Vec<u8>> {
    let mut server = Server::new(
        PhpMachine::specialized(),
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    )
    .with_reference(PhpMachine::baseline());
    let mut expected = BTreeMap::new();
    for (i, script) in corpus.scripts().iter().enumerate() {
        let script = Arc::clone(script);
        let record = server.serve_indexed(i as u64, &mut |m, _req| script.run(m, true));
        assert_eq!(
            record.outcome.status_code(),
            200,
            "direct serving of {} failed",
            script.entry().name
        );
        expected.insert(format!("/run/{}", script.entry().name), record.response);
        server.recover_between_requests();
    }
    assert_eq!(server.stats().mismatches, 0, "direct replay mismatch");
    expected
}

struct RunResult {
    workers: usize,
    loadgen: LoopbackReport,
    report: HttpReport,
    wall_ms: f64,
}

fn run(
    corpus: &Arc<CorpusCache>,
    workers: usize,
    per_client: usize,
    paths: &[String],
) -> RunResult {
    let cfg = HttpConfig::loopback(workers);
    let server = HttpServer::start(cfg, Arc::clone(corpus)).expect("bind http front end");
    let addr = server.addr();
    let loadgen = LoopbackLoadGen::new(LoopbackConfig {
        clients: CLIENTS,
        requests_per_client: per_client,
        paths: paths.to_vec(),
    });
    let start = Instant::now();
    let report = loadgen.run(addr);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let http_report = server.shutdown();
    RunResult {
        workers,
        loadgen: report,
        report: http_report,
        wall_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_http.json")
        .to_string();
    let per_client = if smoke {
        SMOKE_PER_CLIENT
    } else {
        FULL_PER_CLIENT
    };
    let total = (CLIENTS * per_client) as u64;

    println!("http_bench: building the shared compile cache...");
    let corpus = Arc::new(CorpusCache::build());
    let paths: Vec<String> = corpus
        .scripts()
        .iter()
        .map(|s| format!("/run/{}", s.entry().name))
        .collect();
    println!(
        "http_bench: {} corpus scripts; {} clients x {} requests per run",
        corpus.len(),
        CLIENTS,
        per_client
    );
    let expected = direct_expected(&corpus);

    let mut failures: Vec<String> = Vec::new();
    let mut results: Vec<RunResult> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let r = run(&corpus, workers, per_client, &paths);
        println!(
            "  {} worker(s): {} completed, {} errors, {} ok(200), {} replay mismatches, wall {:.0} ms",
            workers,
            r.loadgen.completed,
            r.loadgen.errors,
            r.loadgen.status(200),
            r.report.stats.mismatches,
            r.wall_ms
        );
        results.push(r);
    }

    let mut runs_json = Vec::new();
    for r in &results {
        // Gate 1: nothing sheds, nothing errors — every arrival is a 200.
        if r.loadgen.completed != total || r.loadgen.errors != 0 || r.loadgen.status(200) != total {
            failures.push(format!(
                "{} workers: {} of {} completed, {} errors, {} with status 200",
                r.workers,
                r.loadgen.completed,
                total,
                r.loadgen.errors,
                r.loadgen.status(200)
            ));
        }
        // Gate 2: byte-identity — one distinct body per path, equal to the
        // direct Server's bytes.
        for (path, bodies) in &r.loadgen.bodies {
            if bodies.len() != 1 {
                failures.push(format!(
                    "{} workers: {} served {} distinct bodies",
                    r.workers,
                    path,
                    bodies.len()
                ));
                continue;
            }
            match expected.get(path) {
                Some(want) if want == &bodies[0] => {}
                Some(_) => failures.push(format!(
                    "{} workers: {} body differs from direct Server bytes",
                    r.workers, path
                )),
                None => failures.push(format!("{} workers: unexpected path {}", r.workers, path)),
            }
        }
        // Gate 3: reference replay stayed clean on every worker.
        if r.report.stats.mismatches != 0 {
            failures.push(format!(
                "{} workers: {} replay mismatches",
                r.workers, r.report.stats.mismatches
            ));
        }
        // Gate 4: the front door and the workers agree on volume.
        if r.report.stats.requests != total || r.report.front.http_requests != total {
            failures.push(format!(
                "{} workers: workers served {} and the front door saw {}, expected {}",
                r.workers, r.report.stats.requests, r.report.front.http_requests, total
            ));
        }

        let mut lat = r.loadgen.latencies_us.clone();
        lat.sort_unstable();
        let (p50, p95, p99) = (
            percentile(&lat, 50.0),
            percentile(&lat, 95.0),
            percentile(&lat, 99.0),
        );
        let req_per_s = r.loadgen.completed as f64 / (r.loadgen.wall_us.max(1) as f64 / 1e6);
        println!(
            "  {} worker(s): {:>9.0} req/s (wall), p50/p95/p99 = {}/{}/{} us",
            r.workers, req_per_s, p50, p95, p99
        );
        runs_json.push(format!(
            "    {{\"workers\": {}, \"requests\": {}, \"ok_200\": {}, \"errors\": {}, \
             \"req_per_s\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"replay_mismatches\": {}, \"worker_requests\": {}, \"wall_clock_ms\": {:.1}}}",
            r.workers,
            total,
            r.loadgen.status(200),
            r.loadgen.errors,
            req_per_s,
            p50,
            p95,
            p99,
            r.report.stats.mismatches,
            r.report.stats.requests,
            r.wall_ms
        ));
    }

    let byte_identity = failures.is_empty();
    let json = format!(
        "{{\n  \"bench\": \"http\",\n  \"mode\": \"{}\",\n  \"model\": \"wall-clock over loopback sockets; {} loadgen clients; corpus served via GET /run/<name>\",\n  \"corpus_scripts\": {},\n  \"requests_per_run\": {},\n  \"byte_identity_vs_direct_server\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        CLIENTS,
        corpus.len(),
        total,
        byte_identity,
        runs_json.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("http_bench: wrote {out_path}");

    if failures.is_empty() {
        println!("http_bench: PASS (all 200s, byte-identical to direct serving, 0 mismatches)");
    } else {
        for f in &failures {
            eprintln!("http_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
