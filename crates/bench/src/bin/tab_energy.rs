//! §5.2 energy table.
//!
//! Paper: the specialized hardware delivers ≈21.01 % average energy savings
//! over the priors machine (WordPress 26.06 %, Drupal 16.75 %, MediaWiki
//! 19.81 %), using dynamic-instruction reduction as the proxy plus
//! accelerator access energy.

use bench::{all_comparisons, header, pct, row, standard_load};

fn main() {
    header(
        "§5.2 — energy savings vs the +priors machine",
        "avg ≈ 21.01%; WordPress 26.06%, Drupal 16.75%, MediaWiki 19.81%",
    );
    let cmps = all_comparisons(standard_load(), 0xE6);
    let widths = [12, 12];
    println!("{}", row(&["app".into(), "saving".into()], &widths));
    let mut sum = 0.0;
    for c in &cmps {
        println!("{}", row(&[c.app.clone(), pct(c.energy_saving)], &widths));
        sum += c.energy_saving;
    }
    println!(
        "{}",
        row(&["average".into(), pct(sum / cmps.len() as f64)], &widths)
    );
}
