//! §5.1 area table.
//!
//! Paper: the combined accelerator area is 0.22 mm² at 45 nm — 0.89 % of a
//! 24.7 mm² Nehalem-class core (including private L1/L2).

use bench::header;
use uarch_sim::AreaBudget;

fn main() {
    header(
        "§5.1 — accelerator area budget (45nm, CACTI-like)",
        "Σ = 0.22 mm² = 0.89% of core",
    );
    let a = AreaBudget::default();
    println!("{:24} {:>8}", "component", "mm²");
    for (name, v) in [
        ("hash table (512e)", a.htable_mm2),
        ("reverse transl. table", a.rtt_mm2),
        ("heap manager", a.heap_mm2),
        ("string accelerator", a.string_mm2),
        ("content reuse table", a.reuse_mm2),
        ("control/glue", a.glue_mm2),
    ] {
        println!("{name:24} {v:>8.3}");
    }
    println!("{:24} {:>8.3}", "TOTAL", a.accel_total_mm2());
    println!("{:24} {:>8.1}", "reference core", a.core_mm2);
    println!(
        "{:24} {:>7.2}%",
        "fraction of core",
        a.fraction_of_core() * 100.0
    );
}
