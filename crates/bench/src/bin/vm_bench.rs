//! `vm_bench` — tree-walking evaluation versus the compiled opcode VM.
//!
//! Drives the corpus through [`serve::WorkerPool`] at 1/2/4/8 workers under
//! a zipfian request mix, three times per worker count: once on the
//! tree-walking evaluator, once on the VM with superinstruction fusion
//! disabled (plain opcode dispatch), and once on the full VM (fused
//! echo/concat/index superinstructions). All three run the same shared
//! `Arc`-held compile cache — the VM engines share one `CompiledUnit` per
//! script across every worker.
//!
//! The run fails (exit 1) unless:
//!
//! * every response is byte-identical across the three engines, request for
//!   request, at every worker count;
//! * every multi-worker stream reproduces the single-worker stream exactly
//!   (pool determinism), on every engine;
//! * the per-request replay against each worker's all-software reference
//!   (which stays on the tree-walk engine) reports zero mismatches — the
//!   replay gate doubles as a cross-engine differential;
//! * the fused VM cuts simulated elapsed µops by ≥ 25% versus the tree
//!   walker at 1 worker, with fusion contributing a measurable delta over
//!   the unfused VM;
//! * no machine leaks live blocks.
//!
//! Results land in `BENCH_vm.json`.
//!
//! Usage: `vm_bench [--smoke] [--out PATH]`

use phpaccel_core::{Engine, PhpMachine};
use serve::{PoolConfig, PoolReport, WorkerPool};
use std::sync::Arc;
use std::time::Instant;
use workloads::corpus::{Corpus, CorpusConfig};
use workloads::php_corpus::CorpusCache;

/// Worker counts the bench sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Requests per run (full mode / --smoke).
const FULL_REQUESTS: u64 = 400;
const SMOKE_REQUESTS: u64 = 80;
/// Acceptance floor: fused-VM elapsed-µop reduction vs the tree walker.
const MIN_REDUCTION_PCT: f64 = 25.0;

/// The three engine configurations under test.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Tree,
    VmUnfused,
    VmFused,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Tree => "tree-walk",
            Mode::VmUnfused => "vm",
            Mode::VmFused => "vm+fusion",
        }
    }
}

/// Zipfian request → script schedule, fixed up front so the mapping depends
/// only on the global request index (identical at every worker count).
fn zipf_schedule(requests: u64, scripts: usize) -> Arc<Vec<usize>> {
    let mut corpus = Corpus::new(CorpusConfig::default());
    Arc::new((0..requests).map(|_| corpus.zipf_pick(scripts)).collect())
}

struct RunResult {
    report: PoolReport,
    wall_ms: f64,
}

fn run(
    cache: &Arc<CorpusCache>,
    schedule: &Arc<Vec<usize>>,
    workers: usize,
    requests: u64,
    mode: Mode,
) -> RunResult {
    let pool = WorkerPool::new(PoolConfig::deterministic(workers, requests));
    let cache = Arc::clone(cache);
    let schedule = Arc::clone(schedule);
    let start = Instant::now();
    let report = pool.run(
        move |_| {
            let mut m = PhpMachine::specialized();
            if mode != Mode::Tree {
                m.set_engine(Engine::Vm);
            }
            m
        },
        move |_w| {
            let cache = Arc::clone(&cache);
            let schedule = Arc::clone(&schedule);
            move |m: &mut PhpMachine, req: u64| {
                let script = &cache.scripts()[schedule[req as usize]];
                match mode {
                    // `run` dispatches on the machine's engine; the fused
                    // unit is the production path. The unfused leg calls
                    // the engine entry point directly to isolate fusion.
                    Mode::Tree | Mode::VmFused => script.run(m, true),
                    Mode::VmUnfused => script.run_vm(m, true, false),
                }
            }
        },
    );
    RunResult {
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_vm.json")
        .to_string();
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };

    println!("vm_bench: building the shared compile cache...");
    let cache = Arc::new(CorpusCache::build());
    let schedule = zipf_schedule(requests, cache.len());
    println!(
        "vm_bench: {} corpus scripts, {} zipfian requests per run",
        cache.len(),
        requests
    );

    let mut failures: Vec<String> = Vec::new();
    let mut runs_json = Vec::new();
    let mut identity_mismatches = 0u64;
    let mut replay_mismatches = 0u64;
    // 1-worker streams per mode, for the determinism cross-check.
    let mut references: Vec<Option<RunResult>> = vec![None, None, None];
    let mut headline: Option<(f64, f64)> = None;

    for &workers in &WORKER_COUNTS {
        let modes = [Mode::Tree, Mode::VmUnfused, Mode::VmFused];
        let results: Vec<RunResult> = modes
            .iter()
            .map(|&mode| run(&cache, &schedule, workers, requests, mode))
            .collect();

        // Cross-engine: byte-identical request for request.
        let tree = &results[0];
        for r in &results[1..] {
            for (a, b) in tree.report.records.iter().zip(&r.report.records) {
                if a.request != b.request || a.response != b.response {
                    identity_mismatches += 1;
                }
            }
        }
        // Pool determinism: every stream matches the 1-worker stream of
        // its own mode.
        for (reference, r) in references.iter().zip(&results) {
            if let Some(base) = reference {
                for (a, b) in base.report.records.iter().zip(&r.report.records) {
                    if a.request != b.request || a.response != b.response {
                        identity_mismatches += 1;
                    }
                }
            }
        }
        for (mode, r) in modes.iter().zip(&results) {
            replay_mismatches += r.report.stats.mismatches;
            if r.report.stats.ok != requests {
                failures.push(format!(
                    "{workers} workers: {}/{requests} requests ok on {}",
                    r.report.stats.ok,
                    mode.label()
                ));
            }
            if r.report.live_blocks != 0 {
                failures.push(format!(
                    "{workers} workers: {} leaked {} live blocks",
                    mode.label(),
                    r.report.live_blocks
                ));
            }
        }

        let uops: Vec<u64> = results
            .iter()
            .map(|r| r.report.simulated_elapsed_uops())
            .collect();
        let (tree_uops, vm_uops, fused_uops) = (uops[0], uops[1], uops[2]);
        let reduction = 100.0 * (tree_uops as f64 - fused_uops as f64) / tree_uops as f64;
        let fusion_delta = 100.0 * (vm_uops as f64 - fused_uops as f64) / vm_uops as f64;
        let s = &results[2].report.savings;
        println!(
            "  {} worker(s): elapsed {} -> {} -> {} uops (tree -> vm -> vm+fusion), \
             reduction {reduction:.1}%, fusion delta {fusion_delta:.1}%, \
             fused-ops {}, transients-elided {}",
            workers, tree_uops, vm_uops, fused_uops, s.vm_fused_ops, s.vm_transients_elided,
        );
        if workers == 1 {
            headline = Some((reduction, fusion_delta));
            if reduction < MIN_REDUCTION_PCT {
                failures.push(format!(
                    "1 worker: fused vm reduction {reduction:.1}% below the \
                     {MIN_REDUCTION_PCT}% floor"
                ));
            }
            if fused_uops >= vm_uops {
                failures.push(format!(
                    "1 worker: fusion added no delta ({vm_uops} -> {fused_uops} uops)"
                ));
            }
        }

        runs_json.push(format!(
            "    {{\"workers\": {}, \"requests\": {}, \"ok\": {}, \
             \"elapsed_uops_tree\": {}, \"elapsed_uops_vm\": {}, \
             \"elapsed_uops_vm_fused\": {}, \"reduction_pct\": {:.2}, \
             \"fusion_delta_pct\": {:.2}, \"vm_ops_executed\": {}, \
             \"vm_fused_ops\": {}, \"vm_transients_elided\": {}, \
             \"replay_mismatches\": {}, \"wall_clock_ms\": {:.1}}}",
            workers,
            requests,
            results[2].report.stats.ok,
            tree_uops,
            vm_uops,
            fused_uops,
            reduction,
            fusion_delta,
            s.vm_ops_executed,
            s.vm_fused_ops,
            s.vm_transients_elided,
            results
                .iter()
                .map(|r| r.report.stats.mismatches)
                .sum::<u64>(),
            results.iter().map(|r| r.wall_ms).sum::<f64>(),
        ));
        if workers == 1 {
            for (slot, r) in references.iter_mut().zip(results) {
                *slot = Some(r);
            }
        }
    }

    let mismatches = identity_mismatches + replay_mismatches;
    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} mismatches ({identity_mismatches} byte-identity/determinism, \
             {replay_mismatches} replay)"
        ));
    }

    let (reduction, fusion_delta) = headline.unwrap_or((0.0, 0.0));
    let json = format!(
        "{{\n  \"bench\": \"vm\",\n  \"mode\": \"{}\",\n  \"model\": \"fact-specialized \
         opcode VM with superinstruction fusion vs tree-walking evaluation; one \
         Arc-shared CompiledUnit per script across all workers\",\n  \
         \"corpus_scripts\": {},\n  \"requests_per_run\": {},\n  \
         \"request_mix\": \"zipfian\",\n  \"mismatches\": {},\n  \
         \"reduction_pct_at_1_worker\": {:.2},\n  \
         \"fusion_delta_pct_at_1_worker\": {:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cache.len(),
        requests,
        mismatches,
        reduction,
        fusion_delta,
        runs_json.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("vm_bench: wrote {out_path}");

    if failures.is_empty() {
        println!(
            "vm_bench: PASS (mismatches == 0, fused vm cuts elapsed uops by \
             {reduction:.1}% at 1 worker, fusion delta {fusion_delta:.1}%)"
        );
    } else {
        for f in &failures {
            eprintln!("vm_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
