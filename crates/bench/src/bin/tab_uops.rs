//! §5.2 micro-op cost table.
//!
//! Paper: "Memory allocation requests (malloc and free) require on average
//! 69 and 37 x86 micro-ops, respectively, in software to execute (assuming
//! cache hits). Hash map walks in software require on average 90.66 x86
//! micro-ops."

use bench::{header, row, run_app, standard_load};
use phpaccel_core::{ExecMode, MachineConfig};
use workloads::AppKind;

fn main() {
    header(
        "§5.2 — measured software µop costs",
        "malloc ≈ 69, free ≈ 37, hash map walk ≈ 90.66 µops",
    );
    let widths = [12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "malloc".into(),
                "free".into(),
                "hash-walk".into()
            ],
            &widths
        )
    );
    for kind in AppKind::PHP_APPS {
        let m = run_app(
            kind,
            ExecMode::Baseline,
            MachineConfig::default(),
            standard_load(),
            0xAB,
        );
        let stats = m.ctx().with_allocator(|a| a.stats().clone());
        // Hash walk: average µops per zend_hash_find/update invocation.
        let prof = m.ctx().profiler();
        let mut walk_uops = 0u64;
        let mut walk_calls = 0u64;
        for f in ["zend_hash_find", "zend_hash_update", "zend_hash_del"] {
            if let Some(s) = prof.function(f) {
                walk_uops += s.cost.uops;
                walk_calls += s.calls;
            }
        }
        println!(
            "{}",
            row(
                &[
                    kind.label().into(),
                    format!("{:.1}", stats.avg_malloc_uops()),
                    format!("{:.1}", stats.avg_free_uops()),
                    format!("{:.1}", walk_uops as f64 / walk_calls.max(1) as f64),
                ],
                &widths
            )
        );
    }
}
