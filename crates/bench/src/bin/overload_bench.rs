//! `overload_bench` — graceful degradation under offered load beyond
//! capacity, on the deterministic simulated-cores model.
//!
//! Sweeps offered load at 0.5×/1×/1.5×/2× of measured capacity at 1/4/8
//! workers on both engines (tree-walk and compiled VM), driving
//! session-structured traffic ([`workloads::TrafficPlan`]: zipfian users,
//! login → browse → write over the corpus) through the bounded admission
//! queue ([`serve::OverloadSim`]) with a seeded fault plan live. Emits
//! `BENCH_overload.json` and asserts the overload-survival contract:
//!
//! * at 0.5× nothing is shed;
//! * at 2× the system sheds early (>25% of arrivals) while **admitted**
//!   requests keep ≥99% availability and p99 latency within the budget —
//!   goodput degrades gracefully instead of timeout-storming;
//! * every admitted response replays byte-identically on the all-software
//!   reference machine (0 mismatches) at every worker count, on both
//!   engines, with fault injection on.
//!
//! **Timing model.** As in `serve_bench`, time is simulated µops (the
//! profiler's metered work), converted at a nominal 2 GHz, 1 µop/cycle
//! clock. The queue is advanced by the Lindley recurrence on that clock,
//! so every run replays exactly.
//!
//! Usage: `overload_bench [--smoke] [--out PATH]`

use phpaccel_core::{Engine, PhpMachine};
use serve::{
    AdmissionConfig, AdmissionController, BreakerConfig, FaultPlan, OverloadConfig, OverloadReport,
    OverloadSim, SandboxConfig, Server,
};
use std::sync::Arc;
use std::time::Instant;
use workloads::php_corpus::CorpusCache;
use workloads::{ArrivalConfig, ArrivalShape, SessionConfig, TrafficPlan};

/// Nominal clock for µops → seconds conversion (1 µop per cycle).
const CLOCK_GHZ: f64 = 2.0;
/// Worker counts the bench sweeps.
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];
/// Offered-load factors relative to measured capacity.
const LOAD_FACTORS: [f64; 4] = [0.5, 1.0, 1.5, 2.0];
/// Arrivals per run (full mode / --smoke).
const FULL_REQUESTS: usize = 240;
const SMOKE_REQUESTS: usize = 60;
/// Warmup requests before the measured schedule (stats reset after).
const WARMUP: usize = 6;
/// Seed for arrivals, sessions, and the fault plan.
const SEED: u64 = 20_170_613;

fn uops_to_us(uops: u64) -> f64 {
    uops as f64 / (CLOCK_GHZ * 1_000.0)
}

fn machine(engine: Engine) -> PhpMachine {
    let mut m = PhpMachine::specialized();
    m.set_engine(engine);
    m
}

/// Builds the session-structured traffic plan for one run: who arrives
/// when (shaped arrivals) doing what (zipfian login/browse/write sessions).
fn traffic(shape: ArrivalShape, requests: usize, mean_gap: u64, scripts: usize) -> TrafficPlan {
    TrafficPlan::generate(
        &ArrivalConfig {
            shape,
            requests,
            mean_gap_uops: mean_gap.max(1),
            seed: SEED,
        },
        &SessionConfig {
            seed: SEED,
            ..SessionConfig::default()
        },
        scripts,
    )
}

/// Session-aware handler: arrival `i` (global index `WARMUP + i`) runs the
/// corpus script its session step selected; warmup requests cycle the
/// corpus directly.
fn session_handler(
    cache: &Arc<CorpusCache>,
    plan: &TrafficPlan,
) -> impl FnMut(&mut PhpMachine, u64) -> Vec<u8> {
    let cache = Arc::clone(cache);
    let scripts: Vec<usize> = plan.items.iter().map(|it| it.request.script).collect();
    move |m: &mut PhpMachine, req: u64| {
        let script = match (req as usize).checked_sub(WARMUP) {
            Some(i) if i < scripts.len() => scripts[i],
            _ => (req as usize) % cache.len(),
        };
        cache.scripts()[script].run(m, true)
    }
}

/// Measured capacity of one engine: steady-state (mean, max) service µops
/// per request over session-weighted traffic, warm requests only.
fn calibrate(cache: &Arc<CorpusCache>, engine: Engine) -> (u64, u64) {
    let plan = traffic(ArrivalShape::Steady, 3 * cache.len(), 1, cache.len());
    let mut server = Server::new(
        machine(engine),
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    );
    let mut h = session_handler(cache, &plan);
    let skip = cache.len() as u64; // one cold corpus cycle
    let (mut total, mut max, mut n) = (0u64, 0u64, 0u64);
    for i in 0..(WARMUP as u64 + plan.len() as u64) {
        let before = server.machine().ctx().profiler().total_uops();
        server.serve(&mut h);
        let after = server.machine().ctx().profiler().total_uops();
        server.recover_between_requests();
        if i >= skip {
            let s = after - before;
            total += s;
            max = max.max(s);
            n += 1;
        }
    }
    (total / n.max(1), max)
}

struct RunResult {
    engine: &'static str,
    workers: usize,
    load: f64,
    shape: ArrivalShape,
    budget_uops: u64,
    report: OverloadReport,
    wall_ms: f64,
}

#[allow(clippy::too_many_arguments)]
fn run(
    cache: &Arc<CorpusCache>,
    engine_name: &'static str,
    engine: Engine,
    workers: usize,
    load: f64,
    shape: ArrivalShape,
    requests: usize,
    mean: u64,
    smax: u64,
) -> RunResult {
    // The budget allows a short queue above the conservative envelope; the
    // envelope prior is the calibrated max, so "admitted ⇒ within budget"
    // holds whenever service stays inside the calibrated envelope.
    let budget = (4 * mean).max(2 * smax);
    let gap = (mean as f64 / (load * workers as f64)) as u64;
    let plan = traffic(shape, requests, gap, cache.len());
    let arrivals: Vec<u64> = plan.items.iter().map(|it| it.at_uops).collect();
    let server = Server::new(
        machine(engine),
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    )
    .with_fault_plan(FaultPlan::seeded(
        SEED,
        2,
        WARMUP as u64,
        (WARMUP + requests) as u64,
    ))
    .with_reference(PhpMachine::baseline())
    .with_keep_bodies(false);
    let controller = AdmissionController::new(AdmissionConfig {
        budget_uops: budget,
        queue_capacity: 4 * workers,
        release_ratio: 0.5,
        service_prior_uops: smax,
    });
    let mut sim = OverloadSim::new(
        OverloadConfig {
            workers,
            warmup: WARMUP,
            slo_windows: 10,
            reset_between_requests: true,
        },
        server,
        controller,
    )
    .expect("valid overload config");
    let mut h = session_handler(cache, &plan);
    let start = Instant::now();
    let report = sim.run(&arrivals, &mut h);
    RunResult {
        engine: engine_name,
        workers,
        load,
        shape,
        budget_uops: budget,
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_overload.json")
        .to_string();
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };
    let loads: &[f64] = if smoke { &[2.0] } else { &LOAD_FACTORS };

    println!("overload_bench: building the shared compile cache...");
    let cache = Arc::new(CorpusCache::build());
    let engines: [(&'static str, Engine); 2] = [("tree", Engine::TreeWalk), ("vm", Engine::Vm)];

    let mut results: Vec<RunResult> = Vec::new();
    for (name, engine) in engines {
        let (mean, smax) = calibrate(&cache, engine);
        println!(
            "overload_bench: {name} capacity: mean {mean} uops/request (max {smax}); \
             budget {:.1} us",
            uops_to_us((4 * mean).max(2 * smax))
        );
        for &workers in &WORKER_COUNTS {
            for &load in loads {
                let r = run(
                    &cache,
                    name,
                    engine,
                    workers,
                    load,
                    ArrivalShape::Steady,
                    requests,
                    mean,
                    smax,
                );
                println!(
                    "  {name} {workers}w {load:.1}x steady: {} admitted, {} shed ({:.0}%), \
                     p99 {:.1} us, {} mismatches, wall {:.0} ms",
                    r.report.stats.requests - r.report.stats.shed,
                    r.report.stats.shed,
                    r.report.shed_fraction() * 100.0,
                    uops_to_us(r.report.latency_percentile(99.0)),
                    r.report.stats.mismatches,
                    r.wall_ms
                );
                results.push(r);
            }
            if !smoke {
                // One flash-crowd row per engine/worker count at 1× mean
                // load: the spike alone must force (bounded) shedding.
                let r = run(
                    &cache,
                    name,
                    engine,
                    workers,
                    1.0,
                    ArrivalShape::FlashCrowd,
                    requests,
                    mean,
                    smax,
                );
                println!(
                    "  {name} {workers}w 1.0x flash-crowd: {} shed, min window attainment {:.3}",
                    r.report.stats.shed,
                    r.report
                        .windows
                        .iter()
                        .map(|w| w.attainment())
                        .fold(f64::INFINITY, f64::min)
                );
                results.push(r);
            }
        }
    }

    let mut failures: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    let mut total_mismatches = 0u64;
    for r in &results {
        let report = &r.report;
        let stats = &report.stats;
        let tag = format!(
            "{} {}w {:.1}x {}",
            r.engine,
            r.workers,
            r.load,
            r.shape.name()
        );
        let admitted = stats.requests - stats.shed;
        let p50 = report.latency_percentile(50.0);
        let p99 = report.latency_percentile(99.0);
        let p999 = report.latency_percentile(99.9);
        total_mismatches += stats.mismatches;

        if !stats.outcomes_partition_requests() {
            failures.push(format!("{tag}: outcome partition broken"));
        }
        if stats.mismatches != 0 {
            failures.push(format!("{tag}: {} replay mismatches", stats.mismatches));
        }
        if r.shape == ArrivalShape::Steady && r.load <= 0.5 {
            // With pooled capacity (>= 4 workers) half load must admit
            // everything. A single worker sees the full service-time
            // variance of the corpus (max ~2x mean), so rare queue-wait
            // spikes may cross the deadline even at 0.5x; require only
            // that such shedding stays a small tail.
            if r.workers >= 4 && stats.shed != 0 {
                failures.push(format!("{tag}: shed {} at half load", stats.shed));
            }
            if r.workers == 1 && report.shed_fraction() >= 0.2 {
                failures.push(format!(
                    "{tag}: shed fraction {:.2} at half load, need < 0.2",
                    report.shed_fraction()
                ));
            }
        }
        if r.shape == ArrivalShape::Steady && r.load >= 2.0 {
            if report.shed_fraction() <= 0.25 {
                failures.push(format!(
                    "{tag}: shed fraction {:.2} at 2x, need > 0.25 (must shed early)",
                    report.shed_fraction()
                ));
            }
            if stats.availability() < 0.99 {
                failures.push(format!(
                    "{tag}: admitted availability {:.4} at 2x, need >= 0.99",
                    stats.availability()
                ));
            }
            if p99 > r.budget_uops {
                failures.push(format!(
                    "{tag}: admitted p99 {p99} uops exceeds budget {} at 2x",
                    r.budget_uops
                ));
            }
        }
        if r.shape == ArrivalShape::FlashCrowd && stats.shed == 0 {
            failures.push(format!("{tag}: flash crowd must force shedding"));
        }

        rows.push(format!(
            "    {{\"engine\": \"{}\", \"workers\": {}, \"load_factor\": {:.1}, \
             \"shape\": \"{}\", \"requests\": {}, \"admitted\": {}, \"ok\": {}, \
             \"shed\": {}, \"shed_fraction\": {:.4}, \"availability_admitted\": {:.4}, \
             \"budget_us\": {:.2}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \
             \"slo_attainment\": {:.4}, \"admission_engages\": {}, \"replay_mismatches\": {}, \
             \"wall_clock_ms\": {:.1}}}",
            r.engine,
            r.workers,
            r.load,
            r.shape.name(),
            stats.requests,
            admitted,
            stats.ok,
            stats.shed,
            report.shed_fraction(),
            stats.availability(),
            uops_to_us(r.budget_uops),
            uops_to_us(p50),
            uops_to_us(p99),
            uops_to_us(p999),
            report.slo_attainment(),
            report.admission.engages,
            stats.mismatches,
            r.wall_ms
        ));
    }

    // Graceful degradation is monotone: at fixed capacity, offering more
    // load never lowers the shed fraction (runs were pushed in load order).
    for (name, _) in engines {
        for &workers in &WORKER_COUNTS {
            let fracs: Vec<(f64, f64)> = results
                .iter()
                .filter(|r| {
                    r.engine == name && r.workers == workers && r.shape == ArrivalShape::Steady
                })
                .map(|r| (r.load, r.report.shed_fraction()))
                .collect();
            for pair in fracs.windows(2) {
                if pair[1].1 + 1e-9 < pair[0].1 {
                    failures.push(format!(
                        "{name} {workers}w: shed fraction not monotone in load \
                         ({:.2} at {:.1}x vs {:.2} at {:.1}x)",
                        pair[0].1, pair[0].0, pair[1].1, pair[1].0
                    ));
                }
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"overload\",\n  \"mode\": \"{}\",\n  \"model\": \"simulated cores: \
         Lindley-recurrence FIFO queue over metered uops; {} GHz nominal clock, 1 uop/cycle; \
         deadline-aware admission with hysteresis; seeded session traffic and fault plan\",\n  \
         \"clock_ghz\": {:.1},\n  \"corpus_scripts\": {},\n  \"requests_per_run\": {},\n  \
         \"warmup\": {},\n  \"worker_counts\": [1, 4, 8],\n  \"mismatches\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        CLOCK_GHZ,
        CLOCK_GHZ,
        cache.len(),
        requests,
        WARMUP,
        total_mismatches,
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("overload_bench: wrote {out_path}");

    if failures.is_empty() {
        println!(
            "overload_bench: PASS ({} runs, 0 replay mismatches, graceful degradation at 2x)",
            results.len()
        );
    } else {
        for f in &failures {
            eprintln!("overload_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
