//! Design-choice ablations (DESIGN.md §6).
//!
//! Each study isolates one design decision the paper argues for:
//! GET+SET vs memcached-style GET-only tables \[55\], probe width, lazy vs
//! eager heap-manager memory updates (Mallacc \[48\] contrast), the
//! free-list prefetcher, free-list depth, string block width, sifting
//! segment size, and reuse-table capacity.

use accel_htable::{GetOutcome, HtConfig, HwHashTable};
use accel_regex::ContentReuseTable;
use bench::{header, run_app};
use php_runtime::context::{HashEvent, HashOp};
use phpaccel_core::{ExecMode, MachineConfig, PhpMachine};
use regex_engine::Regex;
use workloads::{AppKind, LoadGen};

fn lg() -> LoadGen {
    LoadGen {
        warmup: 15,
        measured: 50,
        context_switch_every: 0,
    }
}

/// Replays recorded hash events into a table; `get_only` models the
/// memcached-style design (SETs bypass the table entirely).
fn replay(events: &[HashEvent], cfg: HtConfig, get_only: bool) -> (f64, f64) {
    let mut ht = HwHashTable::new(cfg);
    for e in events {
        let Some(key) = &e.key else {
            if e.op == HashOp::Free {
                ht.free(e.base_addr);
            }
            continue;
        };
        let kb = phpaccel_core::key_bytes(key);
        match e.op {
            HashOp::Get => {
                if ht.get(e.base_addr, &kb) == GetOutcome::Miss {
                    ht.fill(e.base_addr, &kb, 1);
                }
            }
            HashOp::Set => {
                if !get_only {
                    ht.set(e.base_addr, &kb, 1);
                }
            }
            HashOp::Unset => {
                ht.invalidate_key(e.base_addr, &kb);
            }
            HashOp::Free | HashOp::Foreach => {}
        }
    }
    (ht.stats().get_hit_rate(), ht.stats().hit_rate())
}

fn hash_events() -> Vec<HashEvent> {
    let mut app = AppKind::WordPress.build(0xAB1);
    let mut m = PhpMachine::new(ExecMode::Baseline, MachineConfig::default());
    m.ctx().set_record_hash_events(true);
    lg().run(app.as_mut(), &mut m);
    m.ctx().take_hash_events()
}

fn main() {
    header(
        "Ablations",
        "design-choice studies the paper's arguments rest on",
    );

    // ------------------------------------------------------------------
    println!("\n[1] GET+SET vs GET-only (memcached-style [55]) hash table");
    println!("    (WordPress hash-event replay; §4.2 argues SET support is essential)");
    let events = hash_events();
    for entries in [64usize, 256, 512] {
        let cfg = HtConfig {
            entries,
            probe_width: 4,
            ..HtConfig::default()
        };
        let (get_hr_full, overall_full) = replay(&events, cfg, false);
        let (get_hr_go, overall_go) = replay(&events, cfg, true);
        println!(
            "    {entries:>4} entries: GET-hit full={:.1}% get-only={:.1}% | overall full={:.1}% get-only={:.1}%",
            get_hr_full * 100.0,
            get_hr_go * 100.0,
            overall_full * 100.0,
            overall_go * 100.0
        );
    }

    // ------------------------------------------------------------------
    println!("\n[2] Probe width (paper: 4 consecutive entries in parallel)");
    for width in [1usize, 2, 4, 8] {
        let cfg = HtConfig {
            entries: 512,
            probe_width: width,
            ..HtConfig::default()
        };
        let (_, overall) = replay(&events, cfg, false);
        println!(
            "    width {width}: overall hit rate {:.2}%",
            overall * 100.0
        );
    }

    // ------------------------------------------------------------------
    println!("\n[3] Heap manager: lazy vs eager memory updates (Mallacc [48] contrast)");
    for (label, policy) in [
        ("lazy (paper)", accel_heap::UpdatePolicy::Lazy),
        ("eager", accel_heap::UpdatePolicy::Eager),
    ] {
        let mut cfg = MachineConfig::default();
        cfg.heap.update_policy = policy;
        let m = run_app(AppKind::WordPress, ExecMode::Specialized, cfg, lg(), 0xAB3);
        let heap_uops = m
            .ctx()
            .profiler()
            .category_breakdown()
            .get(&php_runtime::Category::Heap)
            .copied()
            .unwrap_or(0);
        println!("    {label:13}: heap-category µops {heap_uops}");
    }

    // ------------------------------------------------------------------
    println!("\n[4] Free-list prefetcher on/off (bursty allocation pattern)");
    println!("    (steady churn never drains the lists; bursts do — §4.3's");
    println!("     'hide the latency of software involvement whenever possible')");
    for enabled in [true, false] {
        let mut hm = accel_heap::HwHeapManager::default();
        hm.set_prefetch_enabled(enabled);
        let mut alloc = php_runtime::alloc::SlabAllocator::new();
        let prof = php_runtime::Profiler::new();
        // Seed the software free list, then run alloc bursts.
        let seed: Vec<_> = (0..256).map(|_| alloc.malloc(32, &prof)).collect();
        for b in seed {
            alloc.free(b, &prof);
        }
        let mut live = Vec::new();
        for _round in 0..40 {
            for _ in 0..48 {
                live.push(hm.hmmalloc(32, &mut alloc, &prof).addr().unwrap());
            }
            for addr in live.drain(..) {
                hm.hmfree(addr, 32, &mut alloc, &prof);
            }
        }
        let s = hm.stats();
        println!(
            "    prefetch {}: malloc hit rate {:.2}% (misses {})",
            if enabled { "on " } else { "off" },
            s.malloc_hits as f64 / s.mallocs.max(1) as f64 * 100.0,
            s.malloc_misses
        );
    }

    // ------------------------------------------------------------------
    println!("\n[5] Free-list depth (paper: 32 entries per class)");
    for depth in [4usize, 8, 16, 32, 64] {
        let mut cfg = MachineConfig::default();
        cfg.heap.freelist_entries = depth;
        let m = run_app(AppKind::WordPress, ExecMode::Specialized, cfg, lg(), 0xAB5);
        let s = m.core().heap.stats();
        println!(
            "    depth {depth:>2}: hit rate {:.2}%, spills {}",
            s.hit_rate() * 100.0,
            s.free_spills
        );
    }

    // ------------------------------------------------------------------
    println!("\n[6] String accelerator block width (paper: 64 B / 3 cycles)");
    for width in [16usize, 32, 64] {
        let mut cfg = MachineConfig::default();
        cfg.straccel.block_width = width;
        let m = run_app(AppKind::MediaWiki, ExecMode::Specialized, cfg, lg(), 0xAB6);
        let s = m.core().straccel.stats();
        println!(
            "    {width:>2} B/block: {} accel cycles, {:.1} bytes/cycle",
            s.cycles,
            s.bytes_per_cycle()
        );
    }

    // ------------------------------------------------------------------
    println!("\n[7] Sifting segment size (default 32 B)");
    for seg in [16usize, 32, 64, 128] {
        let cfg = MachineConfig {
            segment_size: seg,
            ..MachineConfig::default()
        };
        let m = run_app(AppKind::WordPress, ExecMode::Specialized, cfg, lg(), 0xAB7);
        let s = m.core().regex_stats;
        println!(
            "    {seg:>3} B segments: {:.1}% content skipped",
            s.skip_fraction() * 100.0
        );
    }

    // ------------------------------------------------------------------
    println!("\n[8] Content reuse table capacity (paper: 32 entries)");
    let re = Regex::new("https://localhost/\\?author=[a-z]+").unwrap();
    for entries in [1usize, 8, 32, 128] {
        let mut table = ContentReuseTable::new(entries);
        // 24 regexp sites round-robin over similar URLs: small tables thrash.
        for round in 0..6u64 {
            for site in 0..24u64 {
                let url = format!(
                    "https://localhost/?author=name{}{}",
                    (b'a' + (site % 5) as u8) as char,
                    (b'a' + (round % 3) as u8) as char
                );
                let _ = accel_regex::run_with_reuse(&re, site, 1, url.as_bytes(), &mut table);
            }
        }
        let s = table.stats();
        println!(
            "    {entries:>3} entries: {} hits / {} lookups, {} evictions",
            s.hits, s.lookups, s.evictions
        );
    }
}
