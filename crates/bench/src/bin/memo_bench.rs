//! `memo_bench` — the cross-request memo cache versus plain re-execution.
//!
//! Drives the corpus through [`serve::WorkerPool`] at 1/2/4/8 workers under
//! the zipfian *session* model (hot users dominate and sessions revisit the
//! same scripts — the request shape that makes cross-request memoization
//! pay), twice per worker count: once plain, and once with one shared
//! sharded [`serve::MemoCache`] attached to every worker's scripts, so call
//! sites the effect analysis proved memoizable replay results another
//! worker computed.
//!
//! The run fails (exit 1) unless:
//!
//! * every memo-on response is byte-identical to its memo-off counterpart,
//!   request for request, at every worker count;
//! * every multi-worker stream reproduces the single-worker stream exactly
//!   (pool determinism), in both modes;
//! * the per-request replay against each worker's all-software reference
//!   reports zero mismatches;
//! * the shared tier genuinely engages at every worker count (warm hits,
//!   stores, and dependency invalidations all nonzero) and memo-on spends
//!   measurably fewer elapsed simulated µops than memo-off at 4 and 8
//!   workers.
//!
//! Results land in `BENCH_memo.json`. Response bytes are deterministic at
//! every worker count, but the elapsed-uop figures at >1 worker carry
//! bounded run-to-run jitter: which worker wins the race to store a shared
//! entry (and which then hit it) depends on thread interleaving, and the
//! elapsed metric is the busiest worker's ledger. The reduction stays
//! comfortably positive either way — that, not an exact uop count, is what
//! the bench enforces.
//!
//! Usage: `memo_bench [--smoke] [--out PATH]`

use php_interp::MemoTier;
use phpaccel_core::PhpMachine;
use serve::{MemoCache, PoolConfig, PoolReport, WorkerPool};
use std::sync::Arc;
use std::time::Instant;
use workloads::php_corpus::CorpusCache;
use workloads::session::{SessionConfig, SessionModel};

/// Worker counts the bench sweeps.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Requests per run (full mode / --smoke).
const FULL_REQUESTS: u64 = 400;
const SMOKE_REQUESTS: u64 = 80;

/// Session-structured request → script schedule, fixed up front so the
/// mapping depends only on the global request index (identical at every
/// worker count): 64 zipfian users, geometric sessions averaging five
/// steps, a modest write mix.
fn session_schedule(requests: u64, scripts: usize) -> Arc<Vec<usize>> {
    let mut model = SessionModel::new(SessionConfig {
        users: 64,
        continue_prob: 0.8,
        write_prob: 0.15,
        seed: 0x5E55,
    });
    Arc::new(
        model
            .generate(requests as usize, scripts)
            .into_iter()
            .map(|r| r.script)
            .collect(),
    )
}

struct RunResult {
    report: PoolReport,
    wall_ms: f64,
}

fn run(
    cache: &Arc<CorpusCache>,
    schedule: &Arc<Vec<usize>>,
    workers: usize,
    requests: u64,
    memo: Option<Arc<MemoCache>>,
) -> RunResult {
    let mut cfg = PoolConfig::deterministic(workers, requests);
    if let Some(c) = &memo {
        cfg = cfg.with_memo(Arc::clone(c));
    }
    let pool = WorkerPool::new(cfg);
    let cache = Arc::clone(cache);
    let schedule = Arc::clone(schedule);
    let tier = memo.map(|c| c as Arc<dyn MemoTier>);
    let start = Instant::now();
    let report = pool.run(
        |_| PhpMachine::specialized(),
        move |_w| {
            let cache = Arc::clone(&cache);
            let schedule = Arc::clone(&schedule);
            let tier = tier.clone();
            move |m: &mut PhpMachine, req: u64| {
                let script = &cache.scripts()[schedule[req as usize]];
                match &tier {
                    Some(t) => script.run_memo(m, true, Some(Arc::clone(t))),
                    None => script.run(m, true),
                }
            }
        },
    );
    RunResult {
        report,
        wall_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_memo.json")
        .to_string();
    let requests = if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS };

    println!("memo_bench: building the shared compile cache...");
    let cache = Arc::new(CorpusCache::build());
    let schedule = session_schedule(requests, cache.len());
    println!(
        "memo_bench: {} corpus scripts, {} session-model requests per run",
        cache.len(),
        requests
    );

    let mut failures: Vec<String> = Vec::new();
    let mut runs_json = Vec::new();
    let mut identity_mismatches = 0u64;
    let mut replay_mismatches = 0u64;
    let mut reference_off: Option<RunResult> = None;
    let mut reference_on: Option<RunResult> = None;
    let mut reduction_at = Vec::new();

    for &workers in &WORKER_COUNTS {
        let off = run(&cache, &schedule, workers, requests, None);
        // A fresh shared cache per run: the hit rate measured is what this
        // worker count earns on its own, not inherited warmth.
        let shared = Arc::new(MemoCache::default());
        let on = run(
            &cache,
            &schedule,
            workers,
            requests,
            Some(Arc::clone(&shared)),
        );

        // Memo on vs off: byte-identical request for request.
        for (a, b) in off.report.records.iter().zip(&on.report.records) {
            if a.request != b.request || a.response != b.response {
                identity_mismatches += 1;
            }
        }
        // Pool determinism: every stream matches the 1-worker stream of its
        // own mode (responses only — hit/miss splits legitimately differ
        // with worker interleaving, served bytes may not).
        for (reference, r) in [(&reference_off, &off), (&reference_on, &on)] {
            if let Some(base) = reference {
                for (a, b) in base.report.records.iter().zip(&r.report.records) {
                    if a.request != b.request || a.response != b.response {
                        identity_mismatches += 1;
                    }
                }
            }
        }
        replay_mismatches += off.report.stats.mismatches + on.report.stats.mismatches;

        let off_uops = off.report.simulated_elapsed_uops();
        let on_uops = on.report.simulated_elapsed_uops();
        let reduction = 100.0 * (off_uops as f64 - on_uops as f64) / off_uops as f64;
        let snap = on.report.memo.expect("memo-on run snapshots its cache");
        println!(
            "  {} worker(s): elapsed {} -> {} uops ({:+.2}%), cache: entries {} \
             hits {} misses {} stores {} invalidations {}",
            workers,
            off_uops,
            on_uops,
            -reduction,
            snap.entries,
            snap.hits,
            snap.misses,
            snap.stores,
            snap.invalidations,
        );

        if off.report.stats.ok != requests || on.report.stats.ok != requests {
            failures.push(format!(
                "{workers} workers: {}/{} (off/on) of {requests} requests ok",
                off.report.stats.ok, on.report.stats.ok
            ));
        }
        if snap.hits == 0 {
            failures.push(format!(
                "{workers} workers: shared tier never replayed a hit"
            ));
        }
        if snap.stores == 0 {
            failures.push(format!("{workers} workers: no proven site ever stored"));
        }
        if snap.invalidations == 0 {
            failures.push(format!(
                "{workers} workers: dependency writes never invalidated anything"
            ));
        }
        if off.report.live_blocks != 0 || on.report.live_blocks != 0 {
            failures.push(format!(
                "{workers} workers: leaked live blocks (off={}, on={})",
                off.report.live_blocks, on.report.live_blocks
            ));
        }
        if workers >= 4 {
            reduction_at.push((workers, reduction));
            if on_uops >= off_uops {
                failures.push(format!(
                    "{workers} workers: memo-on spent {on_uops} elapsed uops vs \
                     {off_uops} memo-off — no measurable reduction"
                ));
            }
        }

        runs_json.push(format!(
            "    {{\"workers\": {}, \"requests\": {}, \"ok\": {}, \
             \"elapsed_uops_memo_off\": {}, \"elapsed_uops_memo_on\": {}, \
             \"elapsed_uop_reduction_pct\": {:.2}, \"memo_hits\": {}, \
             \"memo_misses\": {}, \"memo_stores\": {}, \"memo_invalidations\": {}, \
             \"cache_entries\": {}, \"replay_mismatches\": {}, \
             \"wall_clock_ms\": {:.1}}}",
            workers,
            requests,
            on.report.stats.ok,
            off_uops,
            on_uops,
            reduction,
            snap.hits,
            snap.misses,
            snap.stores,
            snap.invalidations,
            snap.entries,
            off.report.stats.mismatches + on.report.stats.mismatches,
            off.wall_ms + on.wall_ms,
        ));
        if workers == 1 {
            reference_off = Some(off);
            reference_on = Some(on);
        }
    }

    let mismatches = identity_mismatches + replay_mismatches;
    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} mismatches ({identity_mismatches} byte-identity/determinism, \
             {replay_mismatches} replay)"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"memo\",\n  \"mode\": \"{}\",\n  \"model\": \"effect-analysis-proven \
         memoizable call sites served out of one sharded cross-request cache shared by all \
         workers; keys embed argument and read-set-global values, dependency writes invalidate \
         by fingerprint\",\n  \"corpus_scripts\": {},\n  \"requests_per_run\": {},\n  \
         \"request_mix\": \"zipfian-session\",\n  \"mismatches\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cache.len(),
        requests,
        mismatches,
        runs_json.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("memo_bench: wrote {out_path}");

    if failures.is_empty() {
        let headline = reduction_at
            .iter()
            .map(|(w, r)| format!("{r:.1}% at {w} workers"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("memo_bench: PASS (mismatches == 0, elapsed-uop reduction {headline})");
    } else {
        for f in &failures {
            eprintln!("memo_bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
