//! Figure 2(b): cache performance.
//!
//! Paper: L1 I/D behaviour is SPEC-like (the hundreds of leaf functions
//! are compact enough to cache); the L2 has very low MPKI because the L1s
//! filter most references.

use bench::{header, row};
use uarch_sim::core_model::{simulate, CoreKind, Machine};
use uarch_sim::trace::synthesize;
use workloads::AppKind;

fn main() {
    header(
        "Figure 2(b) — cache MPKI per app (32K L1s, 1M L2, prefetchers on)",
        "L1 MPKI moderate/SPEC-like; L2 MPKI very low",
    );
    let widths = [18, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "app".into(),
                "L1I-MPKI".into(),
                "L1D-MPKI".into(),
                "L2-MPKI".into()
            ],
            &widths
        )
    );
    for kind in [
        AppKind::WordPress,
        AppKind::Drupal,
        AppKind::MediaWiki,
        AppKind::SpecWebBanking,
    ] {
        let trace = synthesize(&kind.trace_profile(0xCA), 600_000);
        let n = trace.len() as u64;
        let mut m = Machine::server(CoreKind::OoO4);
        let _ = simulate(&trace, &mut m);
        println!(
            "{}",
            row(
                &[
                    kind.label().into(),
                    format!("{:.2}", m.hierarchy.l1i.stats().mpki(n)),
                    format!("{:.2}", m.hierarchy.l1d.stats().mpki(n)),
                    format!("{:.2}", m.hierarchy.l2.stats().mpki(n)),
                ],
                &widths
            )
        );
    }
}
