//! Shared experiment drivers for the figure/table regeneration binaries.
//!
//! Each `fig*`/`tab*` binary in `src/bin/` reproduces one table or figure
//! of the paper; this library holds the common machinery: paired
//! baseline/specialized runs, report formatting, and the standard load
//! parameters.

#![warn(missing_docs)]

use phpaccel_core::{compare, Comparison, ExecMode, MachineConfig, PhpMachine};
use uarch_sim::EnergyModel;
use workloads::{AppKind, LoadGen};

/// Standard load used by the end-to-end experiments.
pub fn standard_load() -> LoadGen {
    LoadGen {
        warmup: 40,
        measured: 120,
        context_switch_every: 50,
    }
}

/// Quick load for smoke tests.
pub fn quick_load() -> LoadGen {
    LoadGen {
        warmup: 5,
        measured: 15,
        context_switch_every: 0,
    }
}

/// Runs `kind` on a machine in `mode` with the given load; returns the
/// machine post-run (metrics cover the measured phase).
pub fn run_app(
    kind: AppKind,
    mode: ExecMode,
    cfg: MachineConfig,
    lg: LoadGen,
    seed: u64,
) -> PhpMachine {
    let mut app = kind.build(seed);
    let mut machine = PhpMachine::new(mode, cfg);
    let summary = lg.run(app.as_mut(), &mut machine);
    if summary.failed_requests > 0 {
        println!(
            "!! {} ({mode:?}): {} of {} requests failed — first error: {}",
            kind.label(),
            summary.failed_requests,
            summary.requests,
            summary.first_error.as_deref().unwrap_or("<none>")
        );
    }
    machine
}

/// Runs the baseline/specialized pair for `kind` and builds the Figure-14
/// comparison.
pub fn comparison_for(kind: AppKind, lg: LoadGen, seed: u64) -> Comparison {
    let cfg = MachineConfig::default();
    let base = run_app(kind, ExecMode::Baseline, cfg.clone(), lg, seed);
    let spec = run_app(kind, ExecMode::Specialized, cfg, lg, seed);
    compare(kind.label(), &base, &spec, &EnergyModel::default())
}

/// Comparisons for the three PHP applications.
pub fn all_comparisons(lg: LoadGen, seed: u64) -> Vec<Comparison> {
    AppKind::PHP_APPS
        .iter()
        .map(|&k| comparison_for(k, lg, seed))
        .collect()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a standard experiment header.
pub fn header(id: &str, claim: &str) {
    println!("==================================================================");
    println!("{id}");
    println!("paper: {claim}");
    println!("==================================================================");
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_run_produces_comparison() {
        let cmp = comparison_for(AppKind::WordPress, quick_load(), 7);
        assert!(cmp.baseline_cycles > 0.0);
        assert!(cmp.normalized_specialized() < 1.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1793), "17.93%");
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
