//! Compile-pass specialization tests: known facts must lower to the exact
//! specialized opcode, and absent (or empty) facts must fall back to the
//! generic form.
//!
//! Facts are keyed by node identity, so each test parses once, interns the
//! precise AST node it wants to specialize, and compiles that same
//! `Program` instance — mirroring how `php_corpus::prepare` keeps the
//! analyzed program alive for the engines.

use php_interp::ast::{BinOp, Expr, LValue, Stmt};
use php_interp::{compile, parse, AnalysisFacts, CompileOptions, CompiledUnit, KeyShape, Op};
use phpaccel_core::KeyShapeHint;

fn unfused() -> CompileOptions {
    CompileOptions { fuse: false }
}

/// All main-body ops matching `pred` (specialization happens in place, so
/// the tests assert on the single matching instruction).
fn find(unit: &CompiledUnit, pred: impl Fn(&Op) -> bool) -> Vec<&Op> {
    unit.main.iter().filter(|op| pred(op)).collect()
}

#[test]
fn proven_operand_types_bake_skip_flags_into_binop() {
    let program = parse("$x = 1 + 2;").unwrap();
    let Stmt::Assign { value, .. } = &program.stmts[0] else {
        panic!("expected assignment");
    };

    let mut facts = AnalysisFacts::default();
    let id = facts.intern_expr(value);
    facts.set_bin_typed(id, true, true);

    let unit = compile(&program, &[], Some(&facts), unfused());
    let bins = find(&unit, |op| matches!(op, Op::Bin { .. }));
    assert_eq!(bins.len(), 1);
    assert!(
        matches!(
            bins[0],
            Op::Bin {
                op: BinOp::Add,
                skip_lhs: true,
                skip_rhs: true,
                ..
            }
        ),
        "typed add must carry both skip flags: {:?}",
        bins[0]
    );
    assert!(unit.specialized);

    // Same program, no facts: the generic checked form.
    let generic = compile(&program, &[], None, unfused());
    let bins = find(&generic, |op| matches!(op, Op::Bin { .. }));
    assert!(
        matches!(
            bins[0],
            Op::Bin {
                skip_lhs: false,
                skip_rhs: false,
                ..
            }
        ),
        "unproven operands must keep the dynamic type checks: {:?}",
        bins[0]
    );
    assert!(!generic.specialized);
}

#[test]
fn rc_elidable_assignment_compiles_to_elided_store() {
    let program = parse("$x = 5;").unwrap();
    let mut facts = AnalysisFacts::default();
    let id = facts.intern_stmt(&program.stmts[0]);
    facts.mark_rc_elide_store(id);

    let unit = compile(&program, &[], Some(&facts), unfused());
    let stores = find(&unit, |op| matches!(op, Op::StoreVar { .. }));
    assert_eq!(stores.len(), 1);
    assert!(
        matches!(stores[0], Op::StoreVar { elide_rc: true, .. }),
        "proven store must elide the refcount pair: {:?}",
        stores[0]
    );

    // Empty facts table attached: specialized unit, but every verdict
    // defaults to the safe generic form.
    let empty = AnalysisFacts::default();
    let unit = compile(&program, &[], Some(&empty), unfused());
    let stores = find(&unit, |op| matches!(op, Op::StoreVar { .. }));
    assert!(
        matches!(
            stores[0],
            Op::StoreVar {
                elide_rc: false,
                const_key: false,
                ..
            }
        ),
        "empty facts must fall back to the generic store: {:?}",
        stores[0]
    );
    assert!(
        unit.specialized,
        "attached-but-empty facts still specialize"
    );
}

#[test]
fn arena_safe_array_literal_compiles_to_arena_allocation() {
    let program = parse("$a = array(1, 2);").unwrap();
    let Stmt::Assign { value, .. } = &program.stmts[0] else {
        panic!("expected assignment");
    };
    assert!(matches!(value, Expr::ArrayLit(_)));

    let mut facts = AnalysisFacts::default();
    let id = facts.intern_expr(value);
    facts.mark_arena_safe(id);

    let unit = compile(&program, &[], Some(&facts), unfused());
    let allocs = find(&unit, |op| matches!(op, Op::NewArray { .. }));
    assert_eq!(allocs.len(), 1);
    assert!(
        matches!(allocs[0], Op::NewArray { arena: true }),
        "region-proven literal must bump-allocate: {:?}",
        allocs[0]
    );

    let generic = compile(&program, &[], Some(&AnalysisFacts::default()), unfused());
    let allocs = find(&generic, |op| matches!(op, Op::NewArray { .. }));
    assert!(
        matches!(allocs[0], Op::NewArray { arena: false }),
        "unproven literal must stay on the free-list path: {:?}",
        allocs[0]
    );
}

#[test]
fn const_key_shape_bakes_probe_hint_into_index_ops() {
    let program = parse("echo $a['k'];").unwrap();
    let Stmt::Echo(parts) = &program.stmts[0] else {
        panic!("expected echo");
    };
    let index_expr = &parts[0];
    assert!(matches!(index_expr, Expr::Index { .. }));

    let mut facts = AnalysisFacts::default();
    let id = facts.intern_expr(index_expr);
    facts.set_key_shape(id, KeyShape::ConstStr);

    // Unfused: the hint rides on the generic IndexGet.
    let unit = compile(&program, &[], Some(&facts), unfused());
    let gets = find(&unit, |op| matches!(op, Op::IndexGet { .. }));
    assert_eq!(gets.len(), 1);
    assert!(
        matches!(
            gets[0],
            Op::IndexGet {
                hint: KeyShapeHint::ConstStr,
                ..
            }
        ),
        "proven key shape must reach the probe: {:?}",
        gets[0]
    );

    // Fused: PushStr + IndexGet collapse into IndexConst, hint preserved.
    let fused = compile(&program, &[], Some(&facts), CompileOptions { fuse: true });
    let gets = find(&fused, |op| matches!(op, Op::IndexConst { .. }));
    assert_eq!(gets.len(), 1, "fusion must produce IndexConst");
    assert!(
        matches!(
            gets[0],
            Op::IndexConst {
                hint: KeyShapeHint::ConstStr,
                ..
            }
        ),
        "fusion must preserve the probe hint: {:?}",
        gets[0]
    );

    // No facts: unknown shape.
    let generic = compile(&program, &[], None, unfused());
    let gets = find(&generic, |op| matches!(op, Op::IndexGet { .. }));
    assert!(
        matches!(
            gets[0],
            Op::IndexGet {
                hint: KeyShapeHint::Unknown,
                ..
            }
        ),
        "unproven key must probe generically: {:?}",
        gets[0]
    );
}

#[test]
fn arena_safe_indexed_store_site_reaches_autovivification() {
    let program = parse("$a[0] = 1;").unwrap();
    let stmt = &program.stmts[0];
    assert!(matches!(
        stmt,
        Stmt::Assign {
            target: LValue::Index { .. },
            ..
        }
    ));

    let mut facts = AnalysisFacts::default();
    let id = facts.intern_stmt(stmt);
    facts.mark_arena_safe(id);

    let unit = compile(&program, &[], Some(&facts), unfused());
    let bases = find(&unit, |op| matches!(op, Op::LoadIndexBase { .. }));
    assert_eq!(bases.len(), 1);
    assert!(
        matches!(bases[0], Op::LoadIndexBase { arena: true, .. }),
        "proven site must autovivify into the arena: {:?}",
        bases[0]
    );

    let generic = compile(&program, &[], None, unfused());
    let bases = find(&generic, |op| matches!(op, Op::LoadIndexBase { .. }));
    assert!(
        matches!(bases[0], Op::LoadIndexBase { arena: false, .. }),
        "unproven site must not touch the arena: {:?}",
        bases[0]
    );
}

#[test]
fn symtab_arena_verdict_reaches_compiled_function_frames() {
    let program = parse("function f($x) { return $x + 1; } echo f(1);").unwrap();
    let mut facts = AnalysisFacts::default();
    facts.set_symtab_arena_safe("f", true);

    let unit = compile(&program, &[], Some(&facts), unfused());
    let f = &unit.funcs[unit.func_index["f"] as usize];
    assert!(f.symtab_arena, "proven frame must arena-place its symtab");

    let generic = compile(&program, &[], None, unfused());
    let f = &generic.funcs[generic.func_index["f"] as usize];
    assert!(!f.symtab_arena);
}
