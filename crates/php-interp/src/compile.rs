//! Bytecode compilation: lowers a [`Program`] plus optional
//! [`AnalysisFacts`] into a flat [`CompiledUnit`] of *specialized* opcodes.
//!
//! Where the tree-walker consults the facts side-table on every visit, the
//! compiler folds each verdict into the instruction itself: a `Bin` whose
//! operand types were proven compiles to an opcode with its skip flags baked
//! in, an RC-elidable store carries `elide_rc`, a `ConstStr` access site
//! carries the hash-stage hint, and an arena-safe allocation site carries its
//! arena flag. At run time the VM never touches the facts table at all — the
//! unit is self-contained (name/const/regex pools included) and `Send +
//! Sync`, so one `Arc<CompiledUnit>` serves every worker, the software
//! analogue of a shared bytecode cache.
//!
//! With [`CompileOptions::fuse`] on, a second pass builds
//! *superinstructions* for the measured-hot patterns: concat trees flatten
//! into [`Op::ConcatN`] (one transient allocation instead of one per join),
//! `echo` sites become [`Op::EchoValue`] (no transient for an
//! already-string value), and a peephole pass fuses statically adjacent
//! pairs (`PushStr`+`EchoValue` → [`Op::EchoConst`], `LoadVar`+`EchoValue`
//! → [`Op::EchoVar`], `PushStr`+`IndexGet` → [`Op::IndexConst`]) wherever
//! the second instruction is not a jump target.

use crate::ast::{BinOp, Expr, FuncDef, LValue, Program, Stmt};
use crate::builtins;
use crate::eval::hint_of;
use crate::facts::{AnalysisFacts, KeyShape};
use php_runtime::string::PhpStr;
use phpaccel_core::KeyShapeHint;
use regex_engine::Regex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Compilation switches.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Run the superinstruction-fusion pass (concat flattening, echo
    /// fast paths, adjacent-pair peephole). Off = a 1:1 lowering whose
    /// per-step work mirrors the tree-walker, for measuring the fusion
    /// delta in isolation.
    pub fuse: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { fuse: true }
    }
}

/// Longest concat chain [`Op::ConcatN`] will flatten (bounded by the
/// `skip_mask` width); longer chains fall back to nested [`Op::Bin`]s.
pub const MAX_CONCAT_FLATTEN: usize = 64;

/// One opcode of the compiled VM. Jump targets are instruction indices
/// within the containing body (main or one function); every pool index
/// (`name`, const string, regex, message) points into the owning
/// [`CompiledUnit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push `null`.
    PushNull,
    /// Push a boolean literal.
    PushBool(bool),
    /// Push an integer literal.
    PushInt(i64),
    /// Push a float literal.
    PushFloat(f64),
    /// Push a string literal from the const pool.
    PushStr(u32),
    /// Discard the top of stack.
    Pop,
    /// Push a variable's value (`Null` when unset).
    LoadVar {
        /// Name-pool index.
        name: u32,
        /// Proven: the fetched value's refcount increment is elidable.
        elide_rc: bool,
        /// Known site: symbol-table key is a constant string (hash folded).
        const_key: bool,
    },
    /// Pop a value and store it into a variable.
    StoreVar {
        /// Name-pool index.
        name: u32,
        /// Proven: the stored/overwritten refcount pair is elidable.
        elide_rc: bool,
        /// Known site: constant-string symbol-table key.
        const_key: bool,
    },
    /// Pop key then base; push `base[key]` with PHP coercions.
    IndexGet {
        /// Proven RC-elidable read.
        elide_rc: bool,
        /// Proven key shape for the hash probe.
        hint: KeyShapeHint,
    },
    /// Push the array bound to a variable for an indexed store,
    /// autovivifying `null` into a fresh array (arena-placed when the
    /// site was proven request-local). Errors on non-array, non-null.
    LoadIndexBase {
        /// Name-pool index of the array variable.
        name: u32,
        /// Arena verdict for the autovivified array.
        arena: bool,
    },
    /// Pop key, base array, and value (pushed in value→base→key order);
    /// store `base[key] = value`.
    StoreIndexKeyed {
        /// Proven RC-elidable store.
        elide_rc: bool,
        /// Proven key shape for the hash probe.
        hint: KeyShapeHint,
    },
    /// Pop base array and value; append `base[] = value`.
    StoreAppend {
        /// Proven RC-elidable store.
        elide_rc: bool,
        /// Proven fresh-integer append (next-key stage skippable).
        int_append: bool,
    },
    /// Push a fresh empty array (arena-placed when proven request-local).
    NewArray {
        /// Arena verdict for the array descriptor.
        arena: bool,
    },
    /// Pop key then value; insert into the array at top of stack
    /// (which stays on the stack). Array-literal building block.
    ArrayInsert,
    /// Pop a value; append to the array at top of stack (which stays).
    ArrayAppend,
    /// Pop rhs then lhs; push `lhs op rhs`. Never `And`/`Or` (those
    /// compile to jumps). Type-check skip flags are the facts' proven
    /// operand types, baked in.
    Bin {
        /// The operator.
        op: BinOp,
        /// Lhs operand type proven — dynamic check elided.
        skip_lhs: bool,
        /// Rhs operand type proven — dynamic check elided.
        skip_rhs: bool,
        /// Arena verdict for a concat result transient.
        arena: bool,
    },
    /// Pop; push logical negation.
    Not,
    /// Pop; push arithmetic negation.
    Neg,
    /// Pop; push the value's truthiness as a `Bool`.
    ToBool,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalsePop(u32),
    /// Peek; jump when truthy, keeping the value on the stack.
    JumpIfTruePeek(u32),
    /// Peek; jump when falsy, keeping the value on the stack.
    JumpIfFalsePeek(u32),
    /// Enter a metered loop: push a fresh iteration counter.
    PushGuard,
    /// Count one iteration of the innermost metered loop; fail with the
    /// pooled message when the cap (1,000,000) is exceeded.
    GuardTick {
        /// Message-pool index of the cap-exceeded error.
        msg: u32,
    },
    /// Leave a metered loop: pop its iteration counter.
    PopGuard,
    /// Pop an array value; snapshot its pairs onto the iterator stack.
    /// Errors on non-array (`foreach over non-array`).
    IterInit,
    /// Advance the innermost iterator: bind the key/value variables and
    /// fall through, or jump to `end` when exhausted.
    IterNext {
        /// Name-pool index of the value variable.
        value: u32,
        /// Name-pool index of the key variable, when bound.
        key: Option<u32>,
        /// Proven RC-elidable store for the per-iteration binds.
        elide_rc: bool,
        /// Known site: constant-string symbol-table keys.
        const_key: bool,
        /// Jump target on exhaustion (the matching [`Op::IterPop`]).
        end: u32,
    },
    /// Drop the innermost iterator.
    IterPop,
    /// (Re)bind a function name at run time — a nested `function`
    /// definition reached in execution order.
    DefineFunc {
        /// Function-table index of the compiled body.
        func: u32,
    },
    /// Direct call: the callee was resolved at compile time (its name is
    /// never rebound at run time). Pops `argc` arguments.
    CallUser {
        /// Function-table index.
        func: u32,
        /// Argument count.
        argc: u32,
        /// The analysis kept facts alive across this call boundary.
        summarized: bool,
    },
    /// Direct builtin call: the name shadows no user function. Pops
    /// `argc` arguments.
    CallBuiltin {
        /// Name-pool index of the builtin.
        name: u32,
        /// Argument count.
        argc: u32,
        /// Regex-pool index of the analysis-time-compiled pattern.
        regex: Option<u32>,
    },
    /// Late-bound call: resolve through the runtime function table, then
    /// the builtins. Pops `argc` arguments.
    CallDynamic {
        /// Name-pool index of the callee.
        name: u32,
        /// Argument count.
        argc: u32,
        /// Regex-pool index of the analysis-time-compiled pattern.
        regex: Option<u32>,
        /// Facts survived this call boundary (counted only when the name
        /// resolves to a user function, mirroring the tree-walker).
        summarized: bool,
    },
    /// Pop the return value and leave the current body.
    Return,
    /// Pop a value and echo it the way the tree-walker does: stringify,
    /// materialize a transient, append to output.
    Echo {
        /// Arena verdict for the transient.
        arena: bool,
    },
    /// Import names from the global scope into the current one.
    Global {
        /// Name-pool index.
        name: u32,
    },
    /// Unconditional runtime error with a pooled message
    /// (`break`/`continue` outside a loop).
    Fail {
        /// Message-pool index.
        msg: u32,
    },
    // ---- fused superinstructions (emitted only with `fuse` on) ----------
    /// Pop `n` values and push their concatenation as ONE transient —
    /// a flattened concat tree that elides the `n-2` intermediate
    /// transients the nested form would allocate.
    ConcatN {
        /// Number of operands (≤ [`MAX_CONCAT_FLATTEN`]).
        n: u32,
        /// Bit `i` set = operand `i`'s type was proven (check elided).
        skip_mask: u64,
        /// Arena verdict (root concat site) for the result transient.
        arena: bool,
    },
    /// Fused echo: a value that is already a string is appended to the
    /// output directly, with no transient materialization.
    EchoValue {
        /// Arena verdict for the non-string conversion transient.
        arena: bool,
    },
    /// Fused `PushStr` + `EchoValue`: emit a const-pool string.
    EchoConst {
        /// Const-pool index.
        s: u32,
    },
    /// Fused `LoadVar` + `EchoValue`.
    EchoVar {
        /// Name-pool index.
        name: u32,
        /// Proven RC-elidable read.
        elide_rc: bool,
        /// Known site: constant-string symbol-table key.
        const_key: bool,
        /// Arena verdict for the non-string conversion transient.
        arena: bool,
    },
    /// Fused `PushStr` + `IndexGet`: pop base, push `base[const]`.
    IndexConst {
        /// Const-pool index of the key.
        key: u32,
        /// Proven RC-elidable read.
        elide_rc: bool,
        /// Proven key shape for the hash probe.
        hint: KeyShapeHint,
    },
    // ---- cross-request memoization (emitted only when the facts prove
    //      the call site memoizable; see `php-analysis` effects pass) -----
    /// Consult the shared memo tier before the `CallUser` that follows.
    /// The callee's arguments are on the stack; on a hit they are popped,
    /// the cached return value pushed, the cached echo bytes appended, and
    /// control jumps to `skip` (past the matching [`Op::MemoStore`]). On a
    /// miss (or with no tier attached) execution falls through.
    MemoEnter {
        /// Index into [`CompiledUnit::memo_sites`].
        site: u32,
        /// Jump target on a hit: the instruction after the `MemoStore`.
        skip: u32,
    },
    /// Store the result of the preceding `CallUser` (return value on top of
    /// stack, left in place; echo bytes since the matching `MemoEnter`)
    /// into the shared tier.
    MemoStore {
        /// Index into [`CompiledUnit::memo_sites`].
        site: u32,
    },
}

/// Dense opcode classification for the per-opcode execution counters
/// (satellite of the profile output). One variant per [`Op`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
#[repr(usize)]
pub enum OpKind {
    PushNull,
    PushBool,
    PushInt,
    PushFloat,
    PushStr,
    Pop,
    LoadVar,
    StoreVar,
    IndexGet,
    LoadIndexBase,
    StoreIndexKeyed,
    StoreAppend,
    NewArray,
    ArrayInsert,
    ArrayAppend,
    Bin,
    Not,
    Neg,
    ToBool,
    Jump,
    JumpIfFalsePop,
    JumpIfTruePeek,
    JumpIfFalsePeek,
    PushGuard,
    GuardTick,
    PopGuard,
    IterInit,
    IterNext,
    IterPop,
    DefineFunc,
    CallUser,
    CallBuiltin,
    CallDynamic,
    Return,
    Echo,
    Global,
    Fail,
    ConcatN,
    EchoValue,
    EchoConst,
    EchoVar,
    IndexConst,
    MemoEnter,
    MemoStore,
}

/// Number of [`OpKind`] variants (counter-array size).
pub const OP_KIND_COUNT: usize = 44;

impl OpKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        use OpKind::*;
        match self {
            PushNull => "PushNull",
            PushBool => "PushBool",
            PushInt => "PushInt",
            PushFloat => "PushFloat",
            PushStr => "PushStr",
            Pop => "Pop",
            LoadVar => "LoadVar",
            StoreVar => "StoreVar",
            IndexGet => "IndexGet",
            LoadIndexBase => "LoadIndexBase",
            StoreIndexKeyed => "StoreIndexKeyed",
            StoreAppend => "StoreAppend",
            NewArray => "NewArray",
            ArrayInsert => "ArrayInsert",
            ArrayAppend => "ArrayAppend",
            Bin => "Bin",
            Not => "Not",
            Neg => "Neg",
            ToBool => "ToBool",
            Jump => "Jump",
            JumpIfFalsePop => "JumpIfFalsePop",
            JumpIfTruePeek => "JumpIfTruePeek",
            JumpIfFalsePeek => "JumpIfFalsePeek",
            PushGuard => "PushGuard",
            GuardTick => "GuardTick",
            PopGuard => "PopGuard",
            IterInit => "IterInit",
            IterNext => "IterNext",
            IterPop => "IterPop",
            DefineFunc => "DefineFunc",
            CallUser => "CallUser",
            CallBuiltin => "CallBuiltin",
            CallDynamic => "CallDynamic",
            Return => "Return",
            Echo => "Echo",
            Global => "Global",
            Fail => "Fail",
            ConcatN => "ConcatN",
            EchoValue => "EchoValue",
            EchoConst => "EchoConst",
            EchoVar => "EchoVar",
            IndexConst => "IndexConst",
            MemoEnter => "MemoEnter",
            MemoStore => "MemoStore",
        }
    }

    /// All kinds, in index order.
    pub fn all() -> [OpKind; OP_KIND_COUNT] {
        use OpKind::*;
        [
            PushNull,
            PushBool,
            PushInt,
            PushFloat,
            PushStr,
            Pop,
            LoadVar,
            StoreVar,
            IndexGet,
            LoadIndexBase,
            StoreIndexKeyed,
            StoreAppend,
            NewArray,
            ArrayInsert,
            ArrayAppend,
            Bin,
            Not,
            Neg,
            ToBool,
            Jump,
            JumpIfFalsePop,
            JumpIfTruePeek,
            JumpIfFalsePeek,
            PushGuard,
            GuardTick,
            PopGuard,
            IterInit,
            IterNext,
            IterPop,
            DefineFunc,
            CallUser,
            CallBuiltin,
            CallDynamic,
            Return,
            Echo,
            Global,
            Fail,
            ConcatN,
            EchoValue,
            EchoConst,
            EchoVar,
            IndexConst,
            MemoEnter,
            MemoStore,
        ]
    }

    /// Whether this kind is a fusion-produced superinstruction.
    pub fn is_fused(self) -> bool {
        matches!(
            self,
            OpKind::ConcatN
                | OpKind::EchoValue
                | OpKind::EchoConst
                | OpKind::EchoVar
                | OpKind::IndexConst
        )
    }
}

impl Op {
    /// The dense classification of this opcode.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::PushNull => OpKind::PushNull,
            Op::PushBool(_) => OpKind::PushBool,
            Op::PushInt(_) => OpKind::PushInt,
            Op::PushFloat(_) => OpKind::PushFloat,
            Op::PushStr(_) => OpKind::PushStr,
            Op::Pop => OpKind::Pop,
            Op::LoadVar { .. } => OpKind::LoadVar,
            Op::StoreVar { .. } => OpKind::StoreVar,
            Op::IndexGet { .. } => OpKind::IndexGet,
            Op::LoadIndexBase { .. } => OpKind::LoadIndexBase,
            Op::StoreIndexKeyed { .. } => OpKind::StoreIndexKeyed,
            Op::StoreAppend { .. } => OpKind::StoreAppend,
            Op::NewArray { .. } => OpKind::NewArray,
            Op::ArrayInsert => OpKind::ArrayInsert,
            Op::ArrayAppend => OpKind::ArrayAppend,
            Op::Bin { .. } => OpKind::Bin,
            Op::Not => OpKind::Not,
            Op::Neg => OpKind::Neg,
            Op::ToBool => OpKind::ToBool,
            Op::Jump(_) => OpKind::Jump,
            Op::JumpIfFalsePop(_) => OpKind::JumpIfFalsePop,
            Op::JumpIfTruePeek(_) => OpKind::JumpIfTruePeek,
            Op::JumpIfFalsePeek(_) => OpKind::JumpIfFalsePeek,
            Op::PushGuard => OpKind::PushGuard,
            Op::GuardTick { .. } => OpKind::GuardTick,
            Op::PopGuard => OpKind::PopGuard,
            Op::IterInit => OpKind::IterInit,
            Op::IterNext { .. } => OpKind::IterNext,
            Op::IterPop => OpKind::IterPop,
            Op::DefineFunc { .. } => OpKind::DefineFunc,
            Op::CallUser { .. } => OpKind::CallUser,
            Op::CallBuiltin { .. } => OpKind::CallBuiltin,
            Op::CallDynamic { .. } => OpKind::CallDynamic,
            Op::Return => OpKind::Return,
            Op::Echo { .. } => OpKind::Echo,
            Op::Global { .. } => OpKind::Global,
            Op::Fail { .. } => OpKind::Fail,
            Op::ConcatN { .. } => OpKind::ConcatN,
            Op::EchoValue { .. } => OpKind::EchoValue,
            Op::EchoConst { .. } => OpKind::EchoConst,
            Op::EchoVar { .. } => OpKind::EchoVar,
            Op::IndexConst { .. } => OpKind::IndexConst,
            Op::MemoEnter { .. } => OpKind::MemoEnter,
            Op::MemoStore { .. } => OpKind::MemoStore,
        }
    }
}

/// One compiled function body.
#[derive(Debug, Clone)]
pub struct CompiledFunc {
    /// PHP-visible name.
    pub name: String,
    /// Parameter names, in declaration order.
    pub params: Vec<String>,
    /// Body code.
    pub code: Vec<Op>,
    /// The frame's symbol-table array is proven request-scoped.
    pub symtab_arena: bool,
}

/// A compiled program: flat code plus every pool it references. Immutable
/// and `Send + Sync` once built — share one behind an `Arc` across workers.
#[derive(Debug, Clone, Default)]
pub struct CompiledUnit {
    /// Top-level code (function definitions hoisted out).
    pub main: Vec<Op>,
    /// All compiled function bodies (hoisted and nested).
    pub funcs: Vec<CompiledFunc>,
    /// Hoisted name bindings active when execution starts.
    pub func_index: HashMap<String, u32>,
    /// Variable / function / builtin name pool.
    pub names: Vec<String>,
    /// String-literal pool.
    pub consts: Vec<PhpStr>,
    /// Analysis-time-compiled regex pool.
    pub regexes: Vec<Regex>,
    /// Runtime error-message pool.
    pub msgs: Vec<String>,
    /// The fusion pass ran.
    pub fused: bool,
    /// Facts were attached at compile time.
    pub specialized: bool,
    /// Facts side-channel: statically known allocation sizes for heap
    /// free-list pre-seeding (mirrors `Interp::set_facts`).
    pub alloc_size_hints: Vec<usize>,
    /// Facts side-channel: taint lints to book into the savings counters.
    pub taint_lints: u64,
    /// Facts side-channel: proven arena-safe allocation sites.
    pub arena_safe_sites: u64,
    /// Facts side-channel: whether any regex was precompiled (preloads the
    /// string-engine sieve config).
    pub has_precompiled_regex: bool,
    /// Facts side-channel: memoizable call sites, indexed by
    /// [`Op::MemoEnter`]/[`Op::MemoStore`]'s `site` operand.
    pub memo_sites: Vec<MemoSiteInfo>,
}

/// Static description of one proven-memoizable call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoSiteInfo {
    /// Callee name (part of the memo key).
    pub func: String,
    /// Number of arguments on the stack at the `MemoEnter`.
    pub argc: u32,
    /// Globals in the callee's transitive read set; their current values are
    /// folded into the key and they double as invalidation fingerprints.
    pub deps: Vec<String>,
}

/// Compiles a program (plus the shared pre-registered function instances the
/// corpus layer hands every engine) into a [`CompiledUnit`].
///
/// `predefined` mirrors [`crate::Interp::predefine_funcs`]: those exact
/// instances are compiled for the hoisted bindings (facts interned over them
/// apply), and a program-level definition of the same name defers to them.
pub fn compile(
    prog: &Program,
    predefined: &[Arc<FuncDef>],
    facts: Option<&AnalysisFacts>,
    opts: CompileOptions,
) -> CompiledUnit {
    let mut c = Compiler {
        facts,
        opts,
        unit: CompiledUnit {
            fused: opts.fuse,
            specialized: facts.is_some(),
            ..CompiledUnit::default()
        },
        name_map: HashMap::new(),
        const_map: HashMap::new(),
        msg_map: HashMap::new(),
        nested_defs: HashSet::new(),
        bodies: Vec::new(),
    };
    collect_nested_defs(&prog.stmts, true, &mut c.nested_defs);
    if let Some(f) = facts {
        c.unit.alloc_size_hints = f.alloc_size_hints().to_vec();
        c.unit.taint_lints = f.taint_lint_count() as u64;
        c.unit.arena_safe_sites = f.arena_safe_count() as u64;
        c.unit.has_precompiled_regex = f.precompiled_regex_count() > 0;
    }

    // Phase 1: establish the hoisted bindings. Pre-registered instances win
    // (last registration, like repeated `predefine_funcs` inserts); among
    // top-level definitions of one name the first wins (`or_insert`).
    enum Pending<'p> {
        Shared(Arc<FuncDef>),
        Ast(&'p FuncDef),
    }
    let mut order: Vec<(String, Pending<'_>)> = Vec::new();
    let mut bound: HashSet<String> = HashSet::new();
    for def in predefined {
        if bound.insert(def.name.clone()) {
            order.push((def.name.clone(), Pending::Shared(Arc::clone(def))));
        } else {
            // A later registration replaces the earlier one.
            for slot in order.iter_mut() {
                if slot.0 == def.name {
                    slot.1 = Pending::Shared(Arc::clone(def));
                }
            }
        }
    }
    for s in &prog.stmts {
        if let Stmt::FuncDef(f) = s {
            if bound.insert(f.name.clone()) {
                order.push((f.name.clone(), Pending::Ast(f)));
            }
        }
    }
    // Reserve the slots first so call resolution inside any body sees the
    // complete hoisted table.
    for (i, (name, _)) in order.iter().enumerate() {
        c.unit.func_index.insert(name.clone(), i as u32);
        c.bodies.push(None);
    }
    // Phase 2: compile the bodies (may append further slots for nested
    // definitions).
    for (i, (_, pending)) in order.iter().enumerate() {
        let compiled = match pending {
            Pending::Shared(def) => c.func(def),
            Pending::Ast(def) => c.func(def),
        };
        c.bodies[i] = Some(compiled);
    }

    // Main body: hoisted definitions are skipped, like the tree-walker.
    let mut b = Body::default();
    for s in &prog.stmts {
        if matches!(s, Stmt::FuncDef(_)) {
            continue;
        }
        c.stmt(&mut b, s);
    }
    c.unit.main = c.finish_body(b);
    c.unit.funcs = c
        .bodies
        .into_iter()
        .map(|f| f.expect("every reserved slot compiled"))
        .collect();
    c.unit
}

fn collect_nested_defs(stmts: &[Stmt], top: bool, out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::FuncDef(f) => {
                if !top {
                    out.insert(f.name.clone());
                }
                collect_nested_defs(&f.body, false, out);
            }
            Stmt::If {
                then, otherwise, ..
            } => {
                collect_nested_defs(then, false, out);
                collect_nested_defs(otherwise, false, out);
            }
            Stmt::While { body, .. } | Stmt::Foreach { body, .. } => {
                collect_nested_defs(body, false, out);
            }
            Stmt::For {
                init, step, body, ..
            } => {
                collect_nested_defs(std::slice::from_ref(init), false, out);
                collect_nested_defs(std::slice::from_ref(step), false, out);
                collect_nested_defs(body, false, out);
            }
            _ => {}
        }
    }
}

/// A body being compiled: its code plus the loop-patching stack.
#[derive(Default)]
struct Body {
    code: Vec<Op>,
    loops: Vec<LoopFrame>,
}

/// Pending jumps of one enclosing loop.
#[derive(Default)]
struct LoopFrame {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct Compiler<'f> {
    facts: Option<&'f AnalysisFacts>,
    opts: CompileOptions,
    unit: CompiledUnit,
    name_map: HashMap<String, u32>,
    const_map: HashMap<String, u32>,
    msg_map: HashMap<String, u32>,
    nested_defs: HashSet<String>,
    bodies: Vec<Option<CompiledFunc>>,
}

impl<'f> Compiler<'f> {
    fn name(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.name_map.get(s) {
            return i;
        }
        let i = self.unit.names.len() as u32;
        self.unit.names.push(s.to_string());
        self.name_map.insert(s.to_string(), i);
        i
    }

    fn constant(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.const_map.get(s) {
            return i;
        }
        let i = self.unit.consts.len() as u32;
        self.unit.consts.push(PhpStr::from(s));
        self.const_map.insert(s.to_string(), i);
        i
    }

    fn msg(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.msg_map.get(s) {
            return i;
        }
        let i = self.unit.msgs.len() as u32;
        self.unit.msgs.push(s.to_string());
        self.msg_map.insert(s.to_string(), i);
        i
    }

    fn func(&mut self, def: &FuncDef) -> CompiledFunc {
        let mut b = Body::default();
        for s in &def.body {
            self.stmt(&mut b, s);
        }
        let symtab_arena = self.facts.is_some_and(|f| f.symtab_arena_safe(&def.name));
        CompiledFunc {
            name: def.name.clone(),
            params: def.params.clone(),
            code: self.finish_body(b),
            symtab_arena,
        }
    }

    fn finish_body(&mut self, b: Body) -> Vec<Op> {
        debug_assert!(b.loops.is_empty(), "unbalanced loop frames");
        if self.opts.fuse {
            fuse_pairs(b.code)
        } else {
            b.code
        }
    }

    fn emit(&mut self, b: &mut Body, op: Op) -> usize {
        b.code.push(op);
        b.code.len() - 1
    }

    fn patch(&mut self, b: &mut Body, at: usize, target: usize) {
        let t = target as u32;
        match &mut b.code[at] {
            Op::Jump(x)
            | Op::JumpIfFalsePop(x)
            | Op::JumpIfTruePeek(x)
            | Op::JumpIfFalsePeek(x) => *x = t,
            Op::IterNext { end, .. } => *end = t,
            Op::MemoEnter { skip, .. } => *skip = t,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn stmt(&mut self, b: &mut Body, s: &Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.expr(b, e);
                self.emit(b, Op::Pop);
            }
            Stmt::Assign { target, value } => {
                // Value evaluates before the target is touched (tree order).
                self.expr(b, value);
                let (elide, shape, site_known) = match self.facts {
                    Some(f) => (
                        f.rc_elide_store(s),
                        f.key_shape_stmt(s),
                        f.stmt_id(s).is_some(),
                    ),
                    None => (false, KeyShape::Unknown, false),
                };
                match target {
                    LValue::Var(name) => {
                        let name = self.name(name);
                        self.emit(
                            b,
                            Op::StoreVar {
                                name,
                                elide_rc: elide,
                                const_key: site_known,
                            },
                        );
                    }
                    LValue::Index { var, key } => {
                        let arena = self.facts.is_some_and(|f| f.arena_safe_stmt(s));
                        let name = self.name(var);
                        self.emit(b, Op::LoadIndexBase { name, arena });
                        match key {
                            Some(kexpr) => {
                                // Key evaluates after autovivification, as in
                                // the tree-walker.
                                self.expr(b, kexpr);
                                self.emit(
                                    b,
                                    Op::StoreIndexKeyed {
                                        elide_rc: elide,
                                        hint: hint_of(shape),
                                    },
                                );
                            }
                            None => {
                                self.emit(
                                    b,
                                    Op::StoreAppend {
                                        elide_rc: elide,
                                        int_append: shape == KeyShape::IntAppend,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Stmt::Echo(parts) => {
                for p in parts {
                    self.expr(b, p);
                    let arena = self.facts.is_some_and(|f| f.arena_safe_expr(p));
                    // The generic `Echo` mirrors the tree-walker exactly
                    // (always materializes a transient); the fusion pass
                    // rewrites it to the string-fast-path `EchoValue`.
                    let op = if self.opts.fuse {
                        Op::EchoValue { arena }
                    } else {
                        Op::Echo { arena }
                    };
                    self.emit(b, op);
                }
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                self.expr(b, cond);
                let jf = self.emit(b, Op::JumpIfFalsePop(u32::MAX));
                for s in then {
                    self.stmt(b, s);
                }
                if otherwise.is_empty() {
                    let end = b.code.len();
                    self.patch(b, jf, end);
                } else {
                    let jend = self.emit(b, Op::Jump(u32::MAX));
                    let else_at = b.code.len();
                    self.patch(b, jf, else_at);
                    for s in otherwise {
                        self.stmt(b, s);
                    }
                    let end = b.code.len();
                    self.patch(b, jend, end);
                }
            }
            Stmt::While { cond, body } => {
                let cap = self.msg("while loop exceeded iteration cap");
                self.emit(b, Op::PushGuard);
                let loop_at = b.code.len();
                self.expr(b, cond);
                let jexit = self.emit(b, Op::JumpIfFalsePop(u32::MAX));
                self.emit(b, Op::GuardTick { msg: cap });
                b.loops.push(LoopFrame::default());
                for s in body {
                    self.stmt(b, s);
                }
                let frame = b.loops.pop().expect("pushed above");
                self.emit(b, Op::Jump(loop_at as u32));
                let end = b.code.len(); // the PopGuard below
                self.patch(b, jexit, end);
                for at in frame.break_patches {
                    self.patch(b, at, end);
                }
                for at in frame.continue_patches {
                    self.patch(b, at, loop_at);
                }
                self.emit(b, Op::PopGuard);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let cap = self.msg("for loop exceeded iteration cap");
                self.stmt(b, init);
                self.emit(b, Op::PushGuard);
                let loop_at = b.code.len();
                self.expr(b, cond);
                let jexit = self.emit(b, Op::JumpIfFalsePop(u32::MAX));
                self.emit(b, Op::GuardTick { msg: cap });
                b.loops.push(LoopFrame::default());
                for s in body {
                    self.stmt(b, s);
                }
                let frame = b.loops.pop().expect("pushed above");
                let step_at = b.code.len();
                self.stmt(b, step);
                self.emit(b, Op::Jump(loop_at as u32));
                let end = b.code.len();
                self.patch(b, jexit, end);
                for at in frame.break_patches {
                    self.patch(b, at, end);
                }
                for at in frame.continue_patches {
                    self.patch(b, at, step_at);
                }
                self.emit(b, Op::PopGuard);
            }
            Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            } => {
                self.expr(b, array);
                self.emit(b, Op::IterInit);
                let (elide, site_known) = match self.facts {
                    Some(f) => (f.rc_elide_store(s), f.stmt_id(s).is_some()),
                    None => (false, false),
                };
                let value = self.name(value_var);
                let key = key_var.as_ref().map(|k| self.name(k));
                let loop_at = b.code.len();
                let next = self.emit(
                    b,
                    Op::IterNext {
                        value,
                        key,
                        elide_rc: elide,
                        const_key: site_known,
                        end: u32::MAX,
                    },
                );
                b.loops.push(LoopFrame::default());
                for s in body {
                    self.stmt(b, s);
                }
                let frame = b.loops.pop().expect("pushed above");
                self.emit(b, Op::Jump(loop_at as u32));
                let end = b.code.len(); // the IterPop below
                self.patch(b, next, end);
                for at in frame.break_patches {
                    self.patch(b, at, end);
                }
                for at in frame.continue_patches {
                    self.patch(b, at, loop_at);
                }
                self.emit(b, Op::IterPop);
            }
            Stmt::FuncDef(f) => {
                // A nested definition executed at run time (hoisted
                // top-level definitions never reach here).
                let compiled = self.func(f);
                let idx = self.bodies.len() as u32;
                self.bodies.push(Some(compiled));
                self.emit(b, Op::DefineFunc { func: idx });
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(b, e),
                    None => {
                        self.emit(b, Op::PushNull);
                    }
                }
                self.emit(b, Op::Return);
            }
            Stmt::Global(names) => {
                for n in names {
                    let name = self.name(n);
                    self.emit(b, Op::Global { name });
                }
            }
            Stmt::Break => {
                if b.loops.is_empty() {
                    let msg = self.msg("break/continue outside loop");
                    self.emit(b, Op::Fail { msg });
                } else {
                    let at = self.emit(b, Op::Jump(u32::MAX));
                    b.loops.last_mut().expect("checked").break_patches.push(at);
                }
            }
            Stmt::Continue => {
                if b.loops.is_empty() {
                    let msg = self.msg("break/continue outside loop");
                    self.emit(b, Op::Fail { msg });
                } else {
                    let at = self.emit(b, Op::Jump(u32::MAX));
                    b.loops
                        .last_mut()
                        .expect("checked")
                        .continue_patches
                        .push(at);
                }
            }
        }
    }

    fn expr(&mut self, b: &mut Body, e: &Expr) {
        match e {
            Expr::Null => {
                self.emit(b, Op::PushNull);
            }
            Expr::Bool(v) => {
                self.emit(b, Op::PushBool(*v));
            }
            Expr::Int(v) => {
                self.emit(b, Op::PushInt(*v));
            }
            Expr::Float(v) => {
                self.emit(b, Op::PushFloat(*v));
            }
            Expr::Str(s) => {
                let i = self.constant(s);
                self.emit(b, Op::PushStr(i));
            }
            Expr::Var(name) => {
                let (elide, site_known) = match self.facts {
                    Some(f) => (f.rc_elide_read(e), f.expr_id(e).is_some()),
                    None => (false, false),
                };
                let name = self.name(name);
                self.emit(
                    b,
                    Op::LoadVar {
                        name,
                        elide_rc: elide,
                        const_key: site_known,
                    },
                );
            }
            Expr::Index { base, key } => {
                self.expr(b, base);
                self.expr(b, key);
                let (elide, shape) = match self.facts {
                    Some(f) => (f.rc_elide_read(e), f.key_shape_expr(e)),
                    None => (false, KeyShape::Unknown),
                };
                self.emit(
                    b,
                    Op::IndexGet {
                        elide_rc: elide,
                        hint: hint_of(shape),
                    },
                );
            }
            Expr::ArrayLit(items) => {
                let arena = self.facts.is_some_and(|f| f.arena_safe_expr(e));
                self.emit(b, Op::NewArray { arena });
                for (k, vexpr) in items {
                    // Value before key, matching the tree-walker.
                    self.expr(b, vexpr);
                    match k {
                        Some(kexpr) => {
                            self.expr(b, kexpr);
                            self.emit(b, Op::ArrayInsert);
                        }
                        None => {
                            self.emit(b, Op::ArrayAppend);
                        }
                    }
                }
            }
            Expr::Call { name, args } => {
                for a in args {
                    self.expr(b, a);
                }
                let argc = args.len() as u32;
                let summarized = self.facts.is_some_and(|f| f.call_summarized(e));
                let regex = self.facts.and_then(|f| f.precompiled_regex(e)).map(|re| {
                    let i = self.unit.regexes.len() as u32;
                    self.unit.regexes.push(re.clone());
                    i
                });
                let rebindable = self.nested_defs.contains(name);
                let op = match self.unit.func_index.get(name) {
                    Some(&func) if !rebindable => Op::CallUser {
                        func,
                        argc,
                        summarized,
                    },
                    None if !rebindable && builtins::NAMES.contains(&name.as_str()) => {
                        Op::CallBuiltin {
                            name: self.name(name),
                            argc,
                            regex,
                        }
                    }
                    _ => Op::CallDynamic {
                        name: self.name(name),
                        argc,
                        regex,
                        summarized,
                    },
                };
                // A proven-memoizable resolved user call is bracketed with
                // MemoEnter/MemoStore; the enter's `skip` jumps past the
                // store on a hit.
                let memo = match &op {
                    Op::CallUser { .. } => self.facts.and_then(|f| f.memo_site(e)).map(|m| {
                        let site = self.unit.memo_sites.len() as u32;
                        self.unit.memo_sites.push(MemoSiteInfo {
                            func: m.func.clone(),
                            argc,
                            deps: m.deps.clone(),
                        });
                        site
                    }),
                    _ => None,
                };
                match memo {
                    Some(site) => {
                        let enter = self.emit(
                            b,
                            Op::MemoEnter {
                                site,
                                skip: u32::MAX,
                            },
                        );
                        self.emit(b, op);
                        self.emit(b, Op::MemoStore { site });
                        let after = b.code.len();
                        self.patch(b, enter, after);
                    }
                    None => {
                        self.emit(b, op);
                    }
                }
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                self.expr(b, cond);
                match then {
                    Some(t) => {
                        let jf = self.emit(b, Op::JumpIfFalsePop(u32::MAX));
                        self.expr(b, t);
                        let jend = self.emit(b, Op::Jump(u32::MAX));
                        let else_at = b.code.len();
                        self.patch(b, jf, else_at);
                        self.expr(b, otherwise);
                        let end = b.code.len();
                        self.patch(b, jend, end);
                    }
                    None => {
                        // Elvis: a truthy condition is itself the result.
                        let jt = self.emit(b, Op::JumpIfTruePeek(u32::MAX));
                        self.emit(b, Op::Pop);
                        self.expr(b, otherwise);
                        let end = b.code.len();
                        self.patch(b, jt, end);
                    }
                }
            }
            Expr::Not(inner) => {
                self.expr(b, inner);
                self.emit(b, Op::Not);
            }
            Expr::Neg(inner) => {
                self.expr(b, inner);
                self.emit(b, Op::Neg);
            }
            Expr::Bin { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(b, lhs);
                    self.emit(b, Op::ToBool);
                    let jf = self.emit(b, Op::JumpIfFalsePeek(u32::MAX));
                    self.emit(b, Op::Pop);
                    self.expr(b, rhs);
                    self.emit(b, Op::ToBool);
                    let end = b.code.len();
                    self.patch(b, jf, end);
                }
                BinOp::Or => {
                    self.expr(b, lhs);
                    self.emit(b, Op::ToBool);
                    let jt = self.emit(b, Op::JumpIfTruePeek(u32::MAX));
                    self.emit(b, Op::Pop);
                    self.expr(b, rhs);
                    self.emit(b, Op::ToBool);
                    let end = b.code.len();
                    self.patch(b, jt, end);
                }
                BinOp::Concat if self.opts.fuse => {
                    let mut leaves: Vec<(&Expr, bool)> = Vec::new();
                    flatten_concat(e, self.facts, &mut leaves);
                    if leaves.len() >= 3 && leaves.len() <= MAX_CONCAT_FLATTEN {
                        let mut mask = 0u64;
                        for (i, (leaf, skip)) in leaves.iter().enumerate() {
                            self.expr(b, leaf);
                            if *skip {
                                mask |= 1 << i;
                            }
                        }
                        let arena = self.facts.is_some_and(|f| f.arena_safe_expr(e));
                        self.emit(
                            b,
                            Op::ConcatN {
                                n: leaves.len() as u32,
                                skip_mask: mask,
                                arena,
                            },
                        );
                    } else {
                        self.bin_generic(b, e, *op, lhs, rhs);
                    }
                }
                _ => self.bin_generic(b, e, *op, lhs, rhs),
            },
        }
    }

    fn bin_generic(&mut self, b: &mut Body, e: &Expr, op: BinOp, lhs: &Expr, rhs: &Expr) {
        self.expr(b, lhs);
        self.expr(b, rhs);
        let (skip_lhs, skip_rhs) = self.facts.map(|f| f.bin_typed(e)).unwrap_or((false, false));
        let arena = self.facts.is_some_and(|f| f.arena_safe_expr(e));
        self.emit(
            b,
            Op::Bin {
                op,
                skip_lhs,
                skip_rhs,
                arena,
            },
        );
    }
}

/// Collects the leaves of a concat tree left-to-right. Each leaf carries the
/// type-proven flag its immediate parent `Bin` recorded for that side;
/// intermediate concat results disappear entirely (they are statically
/// strings).
fn flatten_concat<'e>(e: &'e Expr, facts: Option<&AnalysisFacts>, out: &mut Vec<(&'e Expr, bool)>) {
    let Expr::Bin {
        op: BinOp::Concat,
        lhs,
        rhs,
    } = e
    else {
        unreachable!("flatten_concat on a non-concat node");
    };
    let (skip_l, skip_r) = facts.map(|f| f.bin_typed(e)).unwrap_or((false, false));
    if matches!(
        lhs.as_ref(),
        Expr::Bin {
            op: BinOp::Concat,
            ..
        }
    ) {
        flatten_concat(lhs, facts, out);
    } else {
        out.push((lhs, skip_l));
    }
    if matches!(
        rhs.as_ref(),
        Expr::Bin {
            op: BinOp::Concat,
            ..
        }
    ) {
        flatten_concat(rhs, facts, out);
    } else {
        out.push((rhs, skip_r));
    }
}

/// The adjacent-pair peephole: fuses `PushStr`+`EchoValue`,
/// `LoadVar`+`EchoValue`, and `PushStr`+`IndexGet` wherever the second
/// instruction is not a jump target, then remaps every jump across the
/// renumbering.
fn fuse_pairs(code: Vec<Op>) -> Vec<Op> {
    let mut targets: HashSet<usize> = HashSet::new();
    for op in &code {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalsePop(t)
            | Op::JumpIfTruePeek(t)
            | Op::JumpIfFalsePeek(t) => {
                targets.insert(*t as usize);
            }
            Op::IterNext { end, .. } => {
                targets.insert(*end as usize);
            }
            Op::MemoEnter { skip, .. } => {
                targets.insert(*skip as usize);
            }
            _ => {}
        }
    }
    let mut map = vec![0usize; code.len() + 1];
    let mut out: Vec<Op> = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        map[i] = out.len();
        let fused = if i + 1 < code.len() && !targets.contains(&(i + 1)) {
            match (&code[i], &code[i + 1]) {
                (Op::PushStr(s), Op::EchoValue { .. }) => Some(Op::EchoConst { s: *s }),
                (
                    Op::LoadVar {
                        name,
                        elide_rc,
                        const_key,
                    },
                    Op::EchoValue { arena },
                ) => Some(Op::EchoVar {
                    name: *name,
                    elide_rc: *elide_rc,
                    const_key: *const_key,
                    arena: *arena,
                }),
                (Op::PushStr(s), Op::IndexGet { elide_rc, hint }) => Some(Op::IndexConst {
                    key: *s,
                    elide_rc: *elide_rc,
                    hint: *hint,
                }),
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = fused {
            out.push(op);
            // Nothing jumps to the consumed slot (checked above); point it
            // past the fused op so the map stays monotone.
            map[i + 1] = out.len();
            i += 2;
        } else {
            out.push(code[i].clone());
            i += 1;
        }
    }
    map[code.len()] = out.len();
    for op in &mut out {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalsePop(t)
            | Op::JumpIfTruePeek(t)
            | Op::JumpIfFalsePeek(t) => *t = map[*t as usize] as u32,
            Op::IterNext { end, .. } => *end = map[*end as usize] as u32,
            Op::MemoEnter { skip, .. } => *skip = map[*skip as usize] as u32,
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn unit(src: &str, fuse: bool) -> CompiledUnit {
        let prog = parse(src).unwrap();
        compile(&prog, &[], None, CompileOptions { fuse })
    }

    #[test]
    fn unit_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<CompiledUnit>();
    }

    #[test]
    fn op_kind_indices_are_dense_and_named() {
        for (i, k) in OpKind::all().into_iter().enumerate() {
            assert_eq!(k as usize, i);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn jumps_stay_in_bounds_after_fusion() {
        let src = "$s = ''; for ($i = 0; $i < 3; $i++) { \
                   if ($i == 1) { continue; } $s = $s . 'x' . $i; echo $s; } \
                   echo 'done';";
        for fuse in [false, true] {
            let u = unit(src, fuse);
            for op in &u.main {
                let t = match op {
                    Op::Jump(t)
                    | Op::JumpIfFalsePop(t)
                    | Op::JumpIfTruePeek(t)
                    | Op::JumpIfFalsePeek(t) => *t,
                    Op::IterNext { end, .. } => *end,
                    _ => continue,
                };
                assert!(
                    (t as usize) <= u.main.len(),
                    "target {t} out of bounds in {:?}",
                    u.main
                );
            }
        }
    }

    #[test]
    fn fusion_produces_superinstructions() {
        let u = unit("echo 'a', $x; $y = $a['k'] . 'b' . $x;", true);
        let kinds: Vec<OpKind> = u.main.iter().map(Op::kind).collect();
        assert!(kinds.contains(&OpKind::EchoConst), "{kinds:?}");
        assert!(kinds.contains(&OpKind::EchoVar), "{kinds:?}");
        assert!(kinds.contains(&OpKind::IndexConst), "{kinds:?}");
        assert!(kinds.contains(&OpKind::ConcatN), "{kinds:?}");
    }

    #[test]
    fn unfused_unit_has_no_superinstructions() {
        let u = unit("echo 'a', $x; $y = $a['k'] . 'b' . $x;", false);
        assert!(
            u.main.iter().all(|op| !op.kind().is_fused()),
            "{:?}",
            u.main
        );
    }

    #[test]
    fn break_continue_outside_loop_compile_to_fail() {
        let u = unit("break;", false);
        assert!(matches!(u.main[0], Op::Fail { .. }));
        let u = unit("function f() { continue; } f();", false);
        assert!(u.funcs[0]
            .code
            .iter()
            .any(|op| matches!(op, Op::Fail { .. })));
    }

    #[test]
    fn shadowed_builtin_compiles_to_user_call() {
        let u = unit("function strlen($s) { return 7; } echo strlen('xy');", true);
        assert!(
            u.main.iter().any(|op| matches!(op, Op::CallUser { .. })),
            "{:?}",
            u.main
        );
    }

    #[test]
    fn nested_redefinition_forces_dynamic_call() {
        let u = unit(
            "function f() { return 1; } \
             if (true) { function f() { return 2; } } echo f();",
            false,
        );
        assert!(
            u.main.iter().any(|op| matches!(op, Op::CallDynamic { .. })),
            "{:?}",
            u.main
        );
        assert!(u.main.iter().any(|op| matches!(op, Op::DefineFunc { .. })));
    }
}
