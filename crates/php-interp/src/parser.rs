//! Recursive-descent parser for the mini-PHP subset.

use crate::ast::*;
use crate::lexer::{lex, Kw, LexError, Punct, Token};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Message.
    pub message: String,
    /// Token index where it happened.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            at: e.position,
        }
    }
}

/// Parses a program.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.stmt()?);
    }
    Ok(Program { stmts })
}

/// Maximum grammar-recursion depth. Without a cap, deeply nested input like
/// `((((…1…))))` overflows the native stack — an abort no caller can catch.
const MAX_PARSE_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            at: self.pos,
        }
    }

    /// Runs one grammar-recursion step under the depth cap.
    fn descend<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Token::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek() == Some(&Token::Kw(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut out = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.descend(Self::stmt_inner)
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Kw(Kw::Function)) => {
                self.bump();
                let name = match self.bump() {
                    Some(Token::Ident(n)) => n,
                    other => return Err(self.err(format!("expected function name, got {other:?}"))),
                };
                self.expect_punct(Punct::LParen)?;
                let mut params = Vec::new();
                while !self.eat_punct(Punct::RParen) {
                    match self.bump() {
                        Some(Token::Variable(v)) => params.push(v),
                        other => return Err(self.err(format!("expected parameter, got {other:?}"))),
                    }
                    if !self.eat_punct(Punct::Comma)
                        && self.peek() != Some(&Token::Punct(Punct::RParen))
                    {
                        return Err(self.err("expected , or ) in parameter list"));
                    }
                }
                let body = self.block()?;
                Ok(Stmt::FuncDef(FuncDef { name, params, body }))
            }
            Some(Token::Kw(Kw::Return)) => {
                self.bump();
                if self.eat_punct(Punct::Semi) {
                    return Ok(Stmt::Return(None));
                }
                let e = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(Some(e)))
            }
            Some(Token::Kw(Kw::Echo)) => {
                self.bump();
                let mut parts = vec![self.expr()?];
                while self.eat_punct(Punct::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Echo(parts))
            }
            Some(Token::Kw(Kw::Global)) => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    match self.bump() {
                        Some(Token::Variable(v)) => names.push(v),
                        other => return Err(self.err(format!("expected variable, got {other:?}"))),
                    }
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Global(names))
            }
            Some(Token::Kw(Kw::Break)) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break)
            }
            Some(Token::Kw(Kw::Continue)) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue)
            }
            Some(Token::Kw(Kw::If)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = self.block()?;
                let otherwise = if self.eat_kw(Kw::Else) {
                    if self.peek() == Some(&Token::Kw(Kw::If)) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    otherwise,
                })
            }
            Some(Token::Kw(Kw::While)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Token::Kw(Kw::For)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let step = self.simple_stmt()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init: Box::new(init),
                    cond,
                    step: Box::new(step),
                    body,
                })
            }
            Some(Token::Kw(Kw::Foreach)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let array = self.expr()?;
                if !self.eat_kw(Kw::As) {
                    return Err(self.err("expected 'as' in foreach"));
                }
                let first = match self.bump() {
                    Some(Token::Variable(v)) => v,
                    other => return Err(self.err(format!("expected variable, got {other:?}"))),
                };
                let (key_var, value_var) = if self.eat_punct(Punct::FatArrow) {
                    match self.bump() {
                        Some(Token::Variable(v)) => (Some(first), v),
                        other => return Err(self.err(format!("expected variable, got {other:?}"))),
                    }
                } else {
                    (None, first)
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                Ok(Stmt::Foreach {
                    array,
                    key_var,
                    value_var,
                    body,
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                Ok(s)
            }
        }
    }

    /// Assignment / expression statement without the trailing semicolon
    /// (shared by `for (...)` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Lookahead for `$var =`, `$var[...] =`, `.=`, `+=`, `++`, `--`.
        let save = self.pos;
        if let Some(Token::Variable(name)) = self.peek().cloned() {
            self.bump();
            // Optional single index.
            let key = if self.eat_punct(Punct::LBracket) {
                if self.eat_punct(Punct::RBracket) {
                    Some(None) // $a[] =
                } else {
                    let k = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    Some(Some(k))
                }
            } else {
                None
            };
            let make_target = |key: &Option<Option<Expr>>| match key {
                None => LValue::Var(name.clone()),
                Some(k) => LValue::Index {
                    var: name.clone(),
                    key: k.clone(),
                },
            };
            let read_expr = |key: &Option<Option<Expr>>| match key {
                None => Expr::Var(name.clone()),
                Some(Some(k)) => Expr::Index {
                    base: Box::new(Expr::Var(name.clone())),
                    key: Box::new(k.clone()),
                },
                Some(None) => Expr::Null,
            };
            if self.eat_punct(Punct::Assign) {
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    target: make_target(&key),
                    value,
                });
            }
            if self.eat_punct(Punct::DotAssign) {
                let rhs = self.expr()?;
                return Ok(Stmt::Assign {
                    target: make_target(&key),
                    value: Expr::Bin {
                        op: BinOp::Concat,
                        lhs: Box::new(read_expr(&key)),
                        rhs: Box::new(rhs),
                    },
                });
            }
            if self.eat_punct(Punct::PlusAssign) {
                let rhs = self.expr()?;
                return Ok(Stmt::Assign {
                    target: make_target(&key),
                    value: Expr::Bin {
                        op: BinOp::Add,
                        lhs: Box::new(read_expr(&key)),
                        rhs: Box::new(rhs),
                    },
                });
            }
            if self.eat_punct(Punct::Incr)
                || self.tokens.get(self.pos - 1) == Some(&Token::Punct(Punct::Decr))
            {
                let op = if self.tokens[self.pos - 1] == Token::Punct(Punct::Incr) {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                return Ok(Stmt::Assign {
                    target: make_target(&key),
                    value: Expr::Bin {
                        op,
                        lhs: Box::new(read_expr(&key)),
                        rhs: Box::new(Expr::Int(1)),
                    },
                });
            }
            if self.eat_punct(Punct::Decr) {
                return Ok(Stmt::Assign {
                    target: make_target(&key),
                    value: Expr::Bin {
                        op: BinOp::Sub,
                        lhs: Box::new(read_expr(&key)),
                        rhs: Box::new(Expr::Int(1)),
                    },
                });
            }
            // Not an assignment: rewind, parse as expression.
            self.pos = save;
        }
        let e = self.expr()?;
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.descend(Self::expr_inner)
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or_expr()?;
        if self.eat_punct(Punct::Question) {
            let then = if self.eat_punct(Punct::Colon) {
                None // elvis `?:`
            } else {
                let t = self.expr()?;
                self.expect_punct(Punct::Colon)?;
                Some(Box::new(t))
            };
            let otherwise = self.expr()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then,
                otherwise: Box::new(otherwise),
            });
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct(Punct::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct(Punct::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Punct(Punct::Eq)) => Some(BinOp::Eq),
            Some(Token::Punct(Punct::Ne)) => Some(BinOp::Ne),
            Some(Token::Punct(Punct::Lt)) => Some(BinOp::Lt),
            Some(Token::Punct(Punct::Gt)) => Some(BinOp::Gt),
            Some(Token::Punct(Punct::Le)) => Some(BinOp::Le),
            Some(Token::Punct(Punct::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct(Punct::Plus)) => BinOp::Add,
                Some(Token::Punct(Punct::Minus)) => BinOp::Sub,
                Some(Token::Punct(Punct::Dot)) => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct(Punct::Star)) => BinOp::Mul,
                Some(Token::Punct(Punct::Slash)) => BinOp::Div,
                Some(Token::Punct(Punct::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        // Self-recursive (`!!!…`, `---…`) without passing through `expr`,
        // so it needs its own depth accounting.
        self.descend(|p| {
            if p.eat_punct(Punct::Not) {
                return Ok(Expr::Not(Box::new(p.unary_expr()?)));
            }
            if p.eat_punct(Punct::Minus) {
                return Ok(Expr::Neg(Box::new(p.unary_expr()?)));
            }
            p.postfix_expr()
        })
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        while self.eat_punct(Punct::LBracket) {
            let key = self.expr()?;
            self.expect_punct(Punct::RBracket)?;
            e = Expr::Index {
                base: Box::new(e),
                key: Box::new(key),
            };
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Int(i)),
            Some(Token::Float(f)) => Ok(Expr::Float(f)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Variable(v)) => Ok(Expr::Var(v)),
            Some(Token::Kw(Kw::True)) => Ok(Expr::Bool(true)),
            Some(Token::Kw(Kw::False)) => Ok(Expr::Bool(false)),
            Some(Token::Kw(Kw::Null)) => Ok(Expr::Null),
            Some(Token::Kw(Kw::Array)) => {
                self.expect_punct(Punct::LParen)?;
                self.array_items(Punct::RParen)
            }
            Some(Token::Punct(Punct::LBracket)) => self.array_items(Punct::RBracket),
            Some(Token::Punct(Punct::LParen)) => {
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                self.expect_punct(Punct::LParen)?;
                let mut args = Vec::new();
                while !self.eat_punct(Punct::RParen) {
                    args.push(self.expr()?);
                    if !self.eat_punct(Punct::Comma)
                        && self.peek() != Some(&Token::Punct(Punct::RParen))
                    {
                        return Err(self.err("expected , or ) in call"));
                    }
                }
                Ok(Expr::Call { name, args })
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    fn array_items(&mut self, close: Punct) -> Result<Expr, ParseError> {
        let mut items = Vec::new();
        while !self.eat_punct(close) {
            let first = self.expr()?;
            if self.eat_punct(Punct::FatArrow) {
                let value = self.expr()?;
                items.push((Some(first), value));
            } else {
                items.push((None, first));
            }
            if !self.eat_punct(Punct::Comma) && self.peek() != Some(&Token::Punct(close)) {
                return Err(self.err("expected , or close in array literal"));
            }
        }
        Ok(Expr::ArrayLit(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = format!("echo {}1{};", "(".repeat(5_000), ")".repeat(5_000));
        let err = parse(&deep).expect_err("must hit the depth cap");
        assert!(err.message.contains("nesting too deep"), "{err}");
        // Unary chains recurse without passing through `expr`.
        assert!(parse(&format!("echo {}1;", "!".repeat(5_000))).is_err());
        assert!(parse(&format!("echo {}1;", "-".repeat(5_000))).is_err());
        // Deep *blocks* recurse through `stmt`.
        let blocks = format!(
            "if (1) {} echo 1; {}",
            "{ ".repeat(5_000),
            "}".repeat(5_000)
        );
        assert!(parse(&blocks).is_err());
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let ok = format!("echo {}1{};", "(".repeat(50), ")".repeat(50));
        assert!(parse(&ok).is_ok());
        assert!(parse("echo !!!!!true;").is_ok());
    }

    #[test]
    fn parses_assignment_and_echo() {
        let p = parse("$x = 1 + 2 * 3; echo $x, 'done';").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert!(matches!(&p.stmts[0], Stmt::Assign { target: LValue::Var(v), .. } if v == "x"));
        assert!(matches!(&p.stmts[1], Stmt::Echo(parts) if parts.len() == 2));
    }

    #[test]
    fn precedence() {
        let p = parse("$x = 1 + 2 * 3;").unwrap();
        match &p.stmts[0] {
            Stmt::Assign {
                value:
                    Expr::Bin {
                        op: BinOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_function_and_control_flow() {
        let src = r#"
            function render($post, $n) {
                $out = '';
                for ($i = 0; $i < $n; $i++) {
                    if ($i % 2 == 0) { $out .= 'even'; } else { $out .= 'odd'; }
                }
                while ($n > 0) { $n = $n - 1; }
                return $out;
            }
            $r = render(array('title' => 'Hi'), 4);
        "#;
        let p = parse(src).unwrap();
        assert!(
            matches!(&p.stmts[0], Stmt::FuncDef(f) if f.name == "render" && f.params.len() == 2)
        );
    }

    #[test]
    fn parses_foreach_variants() {
        let p =
            parse("foreach ($a as $v) { echo $v; } foreach ($a as $k => $v) { echo $k; }").unwrap();
        assert!(matches!(&p.stmts[0], Stmt::Foreach { key_var: None, .. }));
        assert!(matches!(&p.stmts[1], Stmt::Foreach { key_var: Some(k), .. } if k == "k"));
    }

    #[test]
    fn parses_array_literals_and_index() {
        let p =
            parse("$a = ['x' => 1, 2, 'y' => 3]; $b = $a['x']; $a[] = 9; $a['z'] = 1;").unwrap();
        assert!(
            matches!(&p.stmts[0], Stmt::Assign { value: Expr::ArrayLit(items), .. } if items.len() == 3)
        );
        assert!(matches!(
            &p.stmts[2],
            Stmt::Assign {
                target: LValue::Index { key: None, .. },
                ..
            }
        ));
        assert!(matches!(
            &p.stmts[3],
            Stmt::Assign {
                target: LValue::Index { key: Some(_), .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_compound_assign_desugar() {
        let p = parse("$s .= 'x'; $n += 2; $n++;").unwrap();
        for s in &p.stmts {
            assert!(matches!(
                s,
                Stmt::Assign {
                    value: Expr::Bin { .. },
                    ..
                }
            ));
        }
    }

    #[test]
    fn parses_calls_and_nested_index() {
        let p = parse("$x = strlen(trim($s)); $y = $m['a']['b'];").unwrap();
        assert!(matches!(
            &p.stmts[0],
            Stmt::Assign {
                value: Expr::Call { .. },
                ..
            }
        ));
        match &p.stmts[1] {
            Stmt::Assign {
                value: Expr::Index { base, .. },
                ..
            } => {
                assert!(matches!(**base, Expr::Index { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse("$x = ;").is_err());
        assert!(parse("if ($x { }").is_err());
        assert!(parse("function f( { }").is_err());
        assert!(parse("foreach ($a $v) {}").is_err());
        assert!(parse("$x = 1").is_err());
    }
}
