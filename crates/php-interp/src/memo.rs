//! Cross-request memoization: the value model and cache interface behind
//! the sites `php-analysis` proves memoizable.
//!
//! The analysis (`effects.rs` in `php-analysis`) marks a user-call site
//! memoizable only when the callee — transitively — writes no globals,
//! calls no nondeterministic builtin (`rand`, `time`), and hides nothing
//! behind an unknown call or `extract`. Its observable behaviour is then a
//! pure function of (callee, argument values, values of the globals in its
//! read-set, bytes it echoes). Both engines build a **canonical key** from
//! exactly those inputs and consult a [`MemoTier`]:
//!
//! * **hit** — replay the stored return value (deep-copied back into the
//!   requesting machine's heap) and append the stored echo bytes, skipping
//!   the callee entirely;
//! * **miss** — run the callee, then store `(return value, echoed bytes)`
//!   under the key together with the site's dependency fingerprint (its
//!   read-set names).
//!
//! Soundness does **not** rest on invalidation: the key embeds the *values*
//! of every global the callee may read, so a stale entry can never be
//! returned for a state it was not computed in — workers with divergent
//! global state simply build divergent keys. Write-triggered invalidation
//! (every global store purges entries whose fingerprint names the written
//! variable) is a freshness/capacity mechanism layered on top: it keeps the
//! shared tier from accumulating dead generations of hot entries.
//!
//! Keys are namespaced per program (the [`MemoHandle`] carries the
//! namespace), because node-local site identity does not survive across
//! different scripts sharing one cache tier.

use php_runtime::array::ArrayKey;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use phpaccel_core::PhpMachine;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum array nesting depth a value may have and still be memoized.
/// Deeper (or cyclic) values make the site silently non-memoizable at
/// runtime — correctness never depends on a value being cacheable.
const MAX_VALUE_DEPTH: u32 = 16;

/// An owned, `Send + Sync` deep copy of a [`PhpValue`]. The engine's values
/// hold `Rc` interior mutability and cannot cross threads; the memo tier
/// stores this flattened form and reconstructs a fresh heap value on a hit.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoValue {
    /// PHP `null`.
    Null,
    /// PHP `bool`.
    Bool(bool),
    /// PHP `int`.
    Int(i64),
    /// PHP `float`.
    Float(f64),
    /// PHP `string` (raw bytes).
    Str(Vec<u8>),
    /// PHP `array`, in insertion order (order is observable via `foreach`).
    Array(Vec<(MemoArrayKey, MemoValue)>),
}

/// Owned array key for [`MemoValue::Array`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoArrayKey {
    /// Integer key.
    Int(i64),
    /// String key (raw bytes).
    Str(Vec<u8>),
}

impl MemoValue {
    /// Deep-copies a runtime value into the owned form. `None` when the
    /// value nests deeper than [`MAX_VALUE_DEPTH`] (covers cyclic arrays).
    pub fn from_php(v: &PhpValue) -> Option<MemoValue> {
        Self::from_php_at(v, 0)
    }

    fn from_php_at(v: &PhpValue, depth: u32) -> Option<MemoValue> {
        if depth > MAX_VALUE_DEPTH {
            return None;
        }
        Some(match v {
            PhpValue::Null => MemoValue::Null,
            PhpValue::Bool(b) => MemoValue::Bool(*b),
            PhpValue::Int(i) => MemoValue::Int(*i),
            PhpValue::Float(f) => MemoValue::Float(*f),
            PhpValue::Str(s) => MemoValue::Str(s.as_bytes().to_vec()),
            PhpValue::Array(rc) => {
                let borrowed = rc.borrow();
                let mut pairs = Vec::with_capacity(borrowed.len());
                for (k, val) in borrowed.iter() {
                    let key = match k {
                        ArrayKey::Int(i) => MemoArrayKey::Int(*i),
                        ArrayKey::Str(s) => MemoArrayKey::Str(s.as_bytes().to_vec()),
                    };
                    pairs.push((key, Self::from_php_at(val, depth + 1)?));
                }
                MemoValue::Array(pairs)
            }
        })
    }

    /// Reconstructs a fresh runtime value in `m`'s heap. Array construction
    /// goes through the machine so the replayed value is metered and lives
    /// on the ordinary free-list path (a memo hit may escape anywhere).
    pub fn to_php(&self, m: &mut PhpMachine) -> PhpValue {
        match self {
            MemoValue::Null => PhpValue::Null,
            MemoValue::Bool(b) => PhpValue::Bool(*b),
            MemoValue::Int(i) => PhpValue::Int(*i),
            MemoValue::Float(f) => PhpValue::Float(*f),
            MemoValue::Str(bytes) => PhpValue::str(PhpStr::from_bytes(bytes.clone())),
            MemoValue::Array(pairs) => {
                let mut arr = m.new_array();
                for (k, v) in pairs {
                    let key = match k {
                        MemoArrayKey::Int(i) => ArrayKey::Int(*i),
                        MemoArrayKey::Str(bytes) => {
                            ArrayKey::Str(PhpStr::from_bytes(bytes.clone()))
                        }
                    };
                    let value = v.to_php(m);
                    m.array_set(&mut arr, key, value);
                }
                PhpValue::array(arr)
            }
        }
    }
}

/// Appends a canonical, collision-free serialization of `v` to `out`.
/// Returns `false` (leaving `out` in an unspecified state) when the value
/// is too deep to serialize — the caller must then skip memoization.
pub fn canon_value(v: &PhpValue, out: &mut String) -> bool {
    canon_value_at(v, out, 0)
}

fn canon_bytes(bytes: &[u8], out: &mut String) {
    out.push_str(&bytes.len().to_string());
    out.push(':');
    for &b in bytes {
        // Printable ASCII stays literal (minus the escape char); everything
        // else is %XX. Length-prefixed, so no delimiter ambiguity.
        if b.is_ascii_graphic() && b != b'%' || b == b' ' {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02x}"));
        }
    }
}

fn canon_value_at(v: &PhpValue, out: &mut String, depth: u32) -> bool {
    if depth > MAX_VALUE_DEPTH {
        return false;
    }
    match v {
        PhpValue::Null => out.push('n'),
        PhpValue::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        PhpValue::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        PhpValue::Float(f) => {
            // Bit pattern: exact, distinguishes 0.0 from -0.0 (echo doesn't,
            // but arithmetic downstream of a replayed value can).
            out.push('f');
            out.push_str(&format!("{:x}", f.to_bits()));
        }
        PhpValue::Str(s) => {
            out.push('s');
            canon_bytes(s.as_bytes(), out);
        }
        PhpValue::Array(rc) => {
            out.push_str("a{");
            let borrowed = rc.borrow();
            for (k, val) in borrowed.iter() {
                match k {
                    ArrayKey::Int(i) => {
                        out.push('k');
                        out.push_str(&i.to_string());
                        out.push('=');
                    }
                    ArrayKey::Str(s) => {
                        out.push('K');
                        canon_bytes(s.as_bytes(), out);
                        out.push('=');
                    }
                }
                if !canon_value_at(val, out, depth + 1) {
                    return false;
                }
                out.push(';');
            }
            out.push('}');
        }
    }
    out.push('|');
    true
}

/// What a memo hit replays: the callee's return value and the bytes it
/// echoed while computing it.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoHit {
    /// Deep-copied return value.
    pub value: MemoValue,
    /// Output the callee produced, appended verbatim on replay.
    pub output: Vec<u8>,
}

/// A shared memoization tier. `serve::memo::MemoCache` is the production
/// (sharded, bucket-locked) implementation; [`SimpleMemo`] is the
/// single-lock reference used by tests and differential harnesses.
pub trait MemoTier: Send + Sync {
    /// Looks up `key`, cloning the stored result on a hit.
    fn lookup(&self, key: &str) -> Option<MemoHit>;
    /// Stores a computed result under `key`. `deps` is the site's
    /// dependency fingerprint: the (namespaced) names of every global the
    /// callee may read, used by [`MemoTier::invalidate`].
    fn store(&self, key: String, deps: Vec<String>, hit: MemoHit);
    /// Purges every entry whose fingerprint names `dep`. Returns how many
    /// entries were dropped.
    fn invalidate(&self, dep: &str) -> u64;
}

/// An engine's attachment to a memo tier: the shared cache plus the
/// program namespace its keys live under.
#[derive(Clone)]
pub struct MemoHandle {
    /// The shared tier.
    pub tier: Arc<dyn MemoTier>,
    /// Program namespace — two scripts sharing a tier must not collide even
    /// when they define a same-named function.
    pub namespace: String,
}

impl std::fmt::Debug for MemoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoHandle")
            .field("namespace", &self.namespace)
            .finish_non_exhaustive()
    }
}

impl MemoHandle {
    /// Creates a handle over `tier` with keys namespaced by `namespace`.
    pub fn new(tier: Arc<dyn MemoTier>, namespace: impl Into<String>) -> Self {
        MemoHandle {
            tier,
            namespace: namespace.into(),
        }
    }

    /// The namespaced dependency name for global `name` — the string both
    /// fingerprints and invalidations use.
    pub fn dep_key(&self, name: &str) -> String {
        format!("{}\u{1}{}", self.namespace, name)
    }

    /// Builds the canonical lookup key for a call site: callee name,
    /// argument values, and the current values of the read-set globals
    /// (fetched through `read_dep`). `None` when any value is too deep to
    /// serialize, in which case the site must execute normally.
    pub fn build_key(
        &self,
        func: &str,
        args: &[PhpValue],
        deps: &[String],
        mut read_dep: impl FnMut(&str) -> PhpValue,
    ) -> Option<String> {
        let mut key = String::with_capacity(64);
        key.push_str(&self.namespace);
        key.push('\u{1}');
        key.push_str(func);
        key.push('(');
        for a in args {
            if !canon_value(a, &mut key) {
                return None;
            }
        }
        key.push(')');
        for dep in deps {
            key.push('@');
            key.push_str(dep);
            key.push('=');
            if !canon_value(&read_dep(dep), &mut key) {
                return None;
            }
        }
        Some(key)
    }

    /// Purges entries depending on global `name` (namespaced). Returns the
    /// number of entries dropped.
    pub fn invalidate(&self, name: &str) -> u64 {
        self.tier.invalidate(&self.dep_key(name))
    }
}

#[derive(Default)]
struct SimpleMemoInner {
    entries: HashMap<String, (Vec<String>, MemoHit)>,
    by_dep: HashMap<String, HashSet<String>>,
}

/// Reference [`MemoTier`]: one lock, one map. Differential tests run this
/// against the sharded production tier — both must produce byte-identical
/// program output, because the tier only ever replays proven-deterministic
/// results.
#[derive(Default)]
pub struct SimpleMemo {
    inner: Mutex<SimpleMemoInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
}

impl SimpleMemo {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses, stores, invalidated entries)` so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
            self.invalidations.load(Ordering::Relaxed),
        )
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MemoTier for SimpleMemo {
    fn lookup(&self, key: &str) -> Option<MemoHit> {
        let inner = self.inner.lock().unwrap();
        match inner.entries.get(key) {
            Some((_, hit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: String, deps: Vec<String>, hit: MemoHit) {
        let mut inner = self.inner.lock().unwrap();
        for dep in &deps {
            inner
                .by_dep
                .entry(dep.clone())
                .or_default()
                .insert(key.clone());
        }
        inner.entries.insert(key, (deps, hit));
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn invalidate(&self, dep: &str) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let Some(keys) = inner.by_dep.remove(dep) else {
            return 0;
        };
        let mut dropped = 0;
        for key in keys {
            if let Some((deps, _)) = inner.entries.remove(&key) {
                dropped += 1;
                // Unlink the key from its other deps' indexes too.
                for other in deps {
                    if other != dep {
                        if let Some(set) = inner.by_dep.get_mut(&other) {
                            set.remove(&key);
                        }
                    }
                }
            }
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(tier: Arc<dyn MemoTier>) -> MemoHandle {
        MemoHandle::new(tier, "t")
    }

    #[test]
    fn canon_distinguishes_types_and_bytes() {
        let mut a = String::new();
        let mut b = String::new();
        assert!(canon_value(&PhpValue::Int(1), &mut a));
        assert!(canon_value(&PhpValue::str("1"), &mut b));
        assert_ne!(a, b, "int 1 vs string \"1\"");
        let (mut c, mut d) = (String::new(), String::new());
        assert!(canon_value(&PhpValue::str("a%b"), &mut c));
        assert!(canon_value(&PhpValue::str("a%25b"), &mut d));
        assert_ne!(c, d, "escape char must round-trip losslessly");
    }

    #[test]
    fn canon_is_order_sensitive_for_arrays() {
        use php_runtime::array::PhpArray;
        let mut x = PhpArray::new();
        x.insert(ArrayKey::Str(PhpStr::from("a")), PhpValue::Int(1));
        x.insert(ArrayKey::Str(PhpStr::from("b")), PhpValue::Int(2));
        let mut y = PhpArray::new();
        y.insert(ArrayKey::Str(PhpStr::from("b")), PhpValue::Int(2));
        y.insert(ArrayKey::Str(PhpStr::from("a")), PhpValue::Int(1));
        let (mut sx, mut sy) = (String::new(), String::new());
        assert!(canon_value(&PhpValue::array(x), &mut sx));
        assert!(canon_value(&PhpValue::array(y), &mut sy));
        assert_ne!(sx, sy, "foreach order is observable");
    }

    #[test]
    fn deep_values_refuse_to_serialize() {
        let mut v = PhpValue::array(php_runtime::array::PhpArray::new());
        for _ in 0..20 {
            let mut outer = php_runtime::array::PhpArray::new();
            outer.insert(ArrayKey::Int(0), v);
            v = PhpValue::array(outer);
        }
        let mut out = String::new();
        assert!(!canon_value(&v, &mut out));
        assert!(MemoValue::from_php(&v).is_none());
    }

    #[test]
    fn memo_value_round_trips_through_a_machine() {
        use php_runtime::array::PhpArray;
        let mut m = PhpMachine::baseline();
        let mut arr = PhpArray::new();
        arr.insert(ArrayKey::Str(PhpStr::from("k")), PhpValue::str("v"));
        arr.insert(ArrayKey::Int(7), PhpValue::Float(1.5));
        let original = PhpValue::array(arr);
        let stored = MemoValue::from_php(&original).unwrap();
        let replayed = stored.to_php(&mut m);
        let (mut a, mut b) = (String::new(), String::new());
        assert!(canon_value(&original, &mut a));
        assert!(canon_value(&replayed, &mut b));
        assert_eq!(a, b, "replayed value must be canonically identical");
    }

    #[test]
    fn simple_memo_hit_miss_and_store() {
        let tier = Arc::new(SimpleMemo::new());
        let h = handle(tier.clone());
        let key = h
            .build_key("f", &[PhpValue::Int(3)], &[], |_| PhpValue::Null)
            .unwrap();
        assert!(tier.lookup(&key).is_none());
        tier.store(
            key.clone(),
            vec![h.dep_key("g")],
            MemoHit {
                value: MemoValue::Int(9),
                output: b"out".to_vec(),
            },
        );
        let hit = tier.lookup(&key).unwrap();
        assert_eq!(hit.value, MemoValue::Int(9));
        assert_eq!(hit.output, b"out");
        assert_eq!(tier.stats(), (1, 1, 1, 0));
    }

    #[test]
    fn invalidation_purges_by_fingerprint() {
        let tier = Arc::new(SimpleMemo::new());
        let h = handle(tier.clone());
        let mk = |n: i64| {
            h.build_key("f", &[PhpValue::Int(n)], &["g".into()], |_| {
                PhpValue::Int(0)
            })
            .unwrap()
        };
        for n in 0..3 {
            tier.store(
                mk(n),
                vec![h.dep_key("g")],
                MemoHit {
                    value: MemoValue::Int(n),
                    output: vec![],
                },
            );
        }
        tier.store(
            h.build_key("u", &[], &[], |_| PhpValue::Null).unwrap(),
            vec![h.dep_key("other")],
            MemoHit {
                value: MemoValue::Null,
                output: vec![],
            },
        );
        assert_eq!(tier.len(), 4);
        assert_eq!(h.invalidate("g"), 3, "only g-dependent entries drop");
        assert_eq!(tier.len(), 1);
        assert_eq!(h.invalidate("g"), 0, "idempotent");
    }

    #[test]
    fn namespaces_do_not_collide() {
        let tier: Arc<dyn MemoTier> = Arc::new(SimpleMemo::new());
        let a = MemoHandle::new(tier.clone(), "script-a");
        let b = MemoHandle::new(tier.clone(), "script-b");
        let ka = a.build_key("f", &[], &[], |_| PhpValue::Null).unwrap();
        let kb = b.build_key("f", &[], &[], |_| PhpValue::Null).unwrap();
        assert_ne!(ka, kb);
        tier.store(
            ka,
            vec![a.dep_key("g")],
            MemoHit {
                value: MemoValue::Int(1),
                output: vec![],
            },
        );
        assert!(tier.lookup(&kb).is_none());
        assert_eq!(b.invalidate("g"), 0, "b's g is not a's g");
        assert_eq!(a.invalidate("g"), 1);
    }

    #[test]
    fn dep_values_are_part_of_the_key() {
        let h = handle(Arc::new(SimpleMemo::new()));
        let k1 = h
            .build_key("f", &[], &["g".into()], |_| PhpValue::Int(1))
            .unwrap();
        let k2 = h
            .build_key("f", &[], &["g".into()], |_| PhpValue::Int(2))
            .unwrap();
        assert_ne!(k1, k2, "a dep write always changes the key");
    }
}
