//! `AnalysisFacts` — the side-table through which static analysis feeds the
//! interpreter and the accelerators.
//!
//! The `php-analysis` crate lowers a [`Program`](crate::ast::Program) into
//! CFGs, runs its data-flow analyses, and records what it proved *here*,
//! keyed by node ids it assigns during lowering. The AST types themselves
//! are never mutated: nodes are identified by address, so the facts are only
//! valid for the exact `Program` instance that was analyzed (templates are
//! parsed once and interpreted per-request, so that instance is long-lived).
//! Once built, the table is read-only, `Send + Sync`, and identity-stable:
//! wrapping the analyzed `Program` and its facts in `Arc`s and handing clones
//! of those `Arc`s to worker threads preserves every node address, so all
//! workers see the same facts without re-parsing or re-analyzing — the
//! software analogue of a shared bytecode cache.
//! A missing entry always means "no facts" — the interpreter falls back to
//! fully dynamic behaviour, which keeps attachment of stale or foreign facts
//! harmless for correctness.
//!
//! Every fact is *work-elision* metadata: skip a dynamic type check, skip
//! metering an inc/dec pair on a proven-non-escaping temporary, or let the
//! hardware hash table skip its hash/probe stage for a proven key shape.
//! None of them change what a program computes, only what bookkeeping the
//! runtime performs — interpreter output is byte-identical with facts
//! attached or not.

use crate::ast::{Expr, Stmt};
use regex_engine::Regex;
use std::collections::{HashMap, HashSet};

/// Identifier of an AST node, assigned in lowering order by `php-analysis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Statically proven shape of a hash-map key at one access site. Mirrors the
/// hardware hint (`accel_htable::KeyShapeHint`) without depending on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KeyShape {
    /// Compile-time constant string key (hash foldable at specialization).
    ConstStr,
    /// Fresh integer append (`$a[] = v` on an append-only array).
    IntAppend,
    /// Nothing proven.
    #[default]
    Unknown,
}

/// The facts side-table. Built by `php-analysis`, consumed by
/// [`Interp`](crate::eval::Interp) via `set_facts`.
#[derive(Debug, Default)]
pub struct AnalysisFacts {
    expr_ids: HashMap<usize, NodeId>,
    stmt_ids: HashMap<usize, NodeId>,
    next: u32,
    /// Per-`Expr::Bin` node: (lhs type proven, rhs type proven).
    bin_typed: HashMap<NodeId, (bool, bool)>,
    /// Expression nodes (`Var` / `Index`) whose fetched value's refcount
    /// increment is elidable (consumed transiently, never escapes).
    rc_elide_read: HashSet<NodeId>,
    /// Statement nodes (`Assign` / `Foreach`) whose stored value's inc and
    /// overwritten value's dec are elidable.
    rc_elide_store: HashSet<NodeId>,
    /// Key shape proven for `Expr::Index` reads and `Stmt::Assign` writes.
    key_shape: HashMap<NodeId, KeyShape>,
    /// Per-`Expr::Call` node: the regex compiled at analysis time from a
    /// constant-propagated `preg_*` pattern argument. The interpreter clones
    /// the handle instead of compiling per request.
    precompiled_regex: HashMap<NodeId, Regex>,
    /// `Expr::Call` nodes of user functions resolved through an
    /// interprocedural summary (counted at runtime as a savings win).
    call_summarized: HashSet<NodeId>,
    /// Byte sizes of statically known allocation sites (constant-string
    /// transients, fresh arrays): fed to the hardware heap's free-list
    /// pre-seeding when the facts are attached.
    alloc_size_hints: Vec<usize>,
    /// Number of tainted-sink lints the analysis raised for this program.
    taint_lint_count: usize,
    /// Allocation sites (echo materializations, concat transients, array
    /// literals, autovivified arrays) the region analysis proved die with
    /// the request: eligible for arena/epoch allocation. Expression and
    /// statement sites share one id space, so one set covers both.
    arena_safe: HashSet<NodeId>,
    /// Functions whose symbol-table array is provably request-scoped (no
    /// `extract` poisoning). A missing name means "not proven" — the
    /// interpreter keeps the free-list path.
    symtab_arena_safe: HashSet<String>,
    /// `Expr::Call` sites the effect analysis proved memoizable across
    /// requests: the callee is (transitively) write-free and deterministic,
    /// so its result is a pure function of arguments plus the globals in
    /// its read-set. The stored fingerprint drives key construction and
    /// write-triggered invalidation.
    memo_sites: HashMap<NodeId, MemoSiteFact>,
}

/// What the engines need to memoize one proven call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoSiteFact {
    /// Callee name (part of the cache key).
    pub func: String,
    /// Dependency fingerprint: every global the callee may (transitively)
    /// read, sorted. Their *values* enter the key; their *names* drive
    /// invalidation.
    pub deps: Vec<String>,
}

fn expr_addr(e: &Expr) -> usize {
    e as *const Expr as usize
}

fn stmt_addr(s: &Stmt) -> usize {
    s as *const Stmt as usize
}

impl AnalysisFacts {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    // -- construction (used by php-analysis) ---------------------------------

    /// Assigns (or returns the existing) id for an expression node.
    pub fn intern_expr(&mut self, e: &Expr) -> NodeId {
        let next = &mut self.next;
        *self.expr_ids.entry(expr_addr(e)).or_insert_with(|| {
            let id = NodeId(*next);
            *next += 1;
            id
        })
    }

    /// Assigns (or returns the existing) id for a statement node.
    pub fn intern_stmt(&mut self, s: &Stmt) -> NodeId {
        let next = &mut self.next;
        *self.stmt_ids.entry(stmt_addr(s)).or_insert_with(|| {
            let id = NodeId(*next);
            *next += 1;
            id
        })
    }

    /// Records which operands of a `Bin` node have statically proven types.
    pub fn set_bin_typed(&mut self, id: NodeId, lhs: bool, rhs: bool) {
        if lhs || rhs {
            self.bin_typed.insert(id, (lhs, rhs));
        }
    }

    /// Marks a read node's refcount increment as elidable.
    pub fn mark_rc_elide_read(&mut self, id: NodeId) {
        self.rc_elide_read.insert(id);
    }

    /// Marks a store statement's refcount pair as elidable.
    pub fn mark_rc_elide_store(&mut self, id: NodeId) {
        self.rc_elide_store.insert(id);
    }

    /// Records the proven key shape for an access site.
    pub fn set_key_shape(&mut self, id: NodeId, shape: KeyShape) {
        if shape != KeyShape::Unknown {
            self.key_shape.insert(id, shape);
        }
    }

    /// Stores the analysis-time-compiled regex for a `preg_*` call site.
    pub fn set_precompiled_regex(&mut self, id: NodeId, re: Regex) {
        self.precompiled_regex.insert(id, re);
    }

    /// Marks a user-call site as resolved through a function summary.
    pub fn mark_call_summarized(&mut self, id: NodeId) {
        self.call_summarized.insert(id);
    }

    /// Records one statically known allocation size (bytes).
    pub fn add_alloc_size_hint(&mut self, size: usize) {
        self.alloc_size_hints.push(size);
    }

    /// Records how many tainted-sink lints the analysis raised.
    pub fn set_taint_lint_count(&mut self, n: usize) {
        self.taint_lint_count = n;
    }

    /// Marks an allocation site (expression or statement id) as arena-safe:
    /// the region analysis proved the allocation never outlives the request.
    pub fn mark_arena_safe(&mut self, id: NodeId) {
        self.arena_safe.insert(id);
    }

    /// Records whether `name`'s symbol-table array is arena-safe. Only
    /// positive verdicts are stored; absence means "use the free list".
    pub fn set_symtab_arena_safe(&mut self, name: &str, safe: bool) {
        if safe {
            self.symtab_arena_safe.insert(name.to_string());
        }
    }

    /// Marks a call site as memoizable with the given fingerprint.
    pub fn set_memo_site(&mut self, id: NodeId, fact: MemoSiteFact) {
        self.memo_sites.insert(id, fact);
    }

    // -- queries (used by the interpreter) -----------------------------------

    /// The id of an expression node, if it belongs to the analyzed program.
    pub fn expr_id(&self, e: &Expr) -> Option<NodeId> {
        self.expr_ids.get(&expr_addr(e)).copied()
    }

    /// The id of a statement node, if it belongs to the analyzed program.
    pub fn stmt_id(&self, s: &Stmt) -> Option<NodeId> {
        self.stmt_ids.get(&stmt_addr(s)).copied()
    }

    /// Whether the operand types of a `Bin` node were proven: `(lhs, rhs)`.
    pub fn bin_typed(&self, e: &Expr) -> (bool, bool) {
        self.expr_id(e)
            .and_then(|id| self.bin_typed.get(&id).copied())
            .unwrap_or((false, false))
    }

    /// Whether a read node's refcount increment is elidable.
    pub fn rc_elide_read(&self, e: &Expr) -> bool {
        self.expr_id(e)
            .is_some_and(|id| self.rc_elide_read.contains(&id))
    }

    /// Whether a store statement's refcount pair is elidable.
    pub fn rc_elide_store(&self, s: &Stmt) -> bool {
        self.stmt_id(s)
            .is_some_and(|id| self.rc_elide_store.contains(&id))
    }

    /// The proven key shape of an `Index` read.
    pub fn key_shape_expr(&self, e: &Expr) -> KeyShape {
        self.expr_id(e)
            .and_then(|id| self.key_shape.get(&id).copied())
            .unwrap_or_default()
    }

    /// The proven key shape of an `Assign` write.
    pub fn key_shape_stmt(&self, s: &Stmt) -> KeyShape {
        self.stmt_id(s)
            .and_then(|id| self.key_shape.get(&id).copied())
            .unwrap_or_default()
    }

    /// The analysis-time-compiled regex for a `preg_*` call site, if any.
    pub fn precompiled_regex(&self, e: &Expr) -> Option<&Regex> {
        self.expr_id(e)
            .and_then(|id| self.precompiled_regex.get(&id))
    }

    /// Whether a user-call site was resolved through a function summary.
    pub fn call_summarized(&self, e: &Expr) -> bool {
        self.expr_id(e)
            .is_some_and(|id| self.call_summarized.contains(&id))
    }

    /// Statically known allocation sizes (bytes), for heap pre-seeding.
    pub fn alloc_size_hints(&self) -> &[usize] {
        &self.alloc_size_hints
    }

    /// Number of tainted-sink lints the analysis raised.
    pub fn taint_lint_count(&self) -> usize {
        self.taint_lint_count
    }

    /// Whether an expression's allocation site is proven arena-safe.
    pub fn arena_safe_expr(&self, e: &Expr) -> bool {
        self.expr_id(e)
            .is_some_and(|id| self.arena_safe.contains(&id))
    }

    /// Whether a statement's allocation site (autovivified array) is proven
    /// arena-safe.
    pub fn arena_safe_stmt(&self, s: &Stmt) -> bool {
        self.stmt_id(s)
            .is_some_and(|id| self.arena_safe.contains(&id))
    }

    /// Whether `name`'s symbol-table array is proven arena-safe.
    pub fn symtab_arena_safe(&self, name: &str) -> bool {
        self.symtab_arena_safe.contains(name)
    }

    /// Number of proven arena-safe allocation sites (node sites plus
    /// symbol-table verdicts), for the savings counters.
    pub fn arena_safe_count(&self) -> usize {
        self.arena_safe.len() + self.symtab_arena_safe.len()
    }

    /// Number of `preg_*` sites with an analysis-time-compiled pattern.
    pub fn precompiled_regex_count(&self) -> usize {
        self.precompiled_regex.len()
    }

    /// The memo fingerprint of a call site, if the analysis proved it
    /// memoizable.
    pub fn memo_site(&self, e: &Expr) -> Option<&MemoSiteFact> {
        self.expr_id(e).and_then(|id| self.memo_sites.get(&id))
    }

    /// Number of proven-memoizable call sites.
    pub fn memo_site_count(&self) -> usize {
        self.memo_sites.len()
    }

    // -- summary counts (used by reports) ------------------------------------

    /// Number of nodes interned.
    pub fn node_count(&self) -> usize {
        self.expr_ids.len() + self.stmt_ids.len()
    }

    /// Number of `Bin` operand slots with proven types.
    pub fn typed_operand_count(&self) -> usize {
        self.bin_typed
            .values()
            .map(|(l, r)| *l as usize + *r as usize)
            .sum()
    }

    /// Number of elidable read nodes.
    pub fn rc_elide_read_count(&self) -> usize {
        self.rc_elide_read.len()
    }

    /// Number of elidable store statements.
    pub fn rc_elide_store_count(&self) -> usize {
        self.rc_elide_store.len()
    }

    /// Number of access sites with a proven key shape, by shape.
    pub fn key_shape_counts(&self) -> (usize, usize) {
        let consts = self
            .key_shape
            .values()
            .filter(|s| **s == KeyShape::ConstStr)
            .count();
        let appends = self
            .key_shape
            .values()
            .filter(|s| **s == KeyShape::IntAppend)
            .count();
        (consts, appends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn facts_key_on_node_identity_not_equality() {
        let prog = parse("$a = 1 + 2; $b = 1 + 2;").unwrap();
        let Stmt::Assign { value: v1, .. } = &prog.stmts[0] else {
            panic!()
        };
        let Stmt::Assign { value: v2, .. } = &prog.stmts[1] else {
            panic!()
        };
        assert_eq!(v1, v2, "structurally equal");
        let mut f = AnalysisFacts::new();
        let id = f.intern_expr(v1);
        f.set_bin_typed(id, true, true);
        assert_eq!(f.bin_typed(v1), (true, true));
        // The twin node carries no facts: identity, not structure.
        assert_eq!(f.bin_typed(v2), (false, false));
        // A clone is a different instance → no facts (safe fallback).
        let cloned = v1.clone();
        assert_eq!(f.bin_typed(&cloned), (false, false));
    }

    #[test]
    fn interning_is_idempotent() {
        let prog = parse("$x = 1;").unwrap();
        let s = &prog.stmts[0];
        let mut f = AnalysisFacts::new();
        let a = f.intern_stmt(s);
        let b = f.intern_stmt(s);
        assert_eq!(a, b);
        assert_eq!(f.stmt_id(s), Some(a));
    }

    #[test]
    fn facts_are_send_and_sync_for_arc_sharing() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisFacts>();
    }

    #[test]
    fn arc_sharing_preserves_node_identity() {
        use std::sync::Arc;
        let prog = Arc::new(parse("$a = 1 + 2;").unwrap());
        let Stmt::Assign { value, .. } = &prog.stmts[0] else {
            panic!()
        };
        let mut f = AnalysisFacts::new();
        let id = f.intern_expr(value);
        f.set_bin_typed(id, true, true);
        let facts = Arc::new(f);
        // Another thread holding clones of the same Arcs resolves the same
        // node to the same facts: addresses survive the Arc round-trip.
        let (p2, f2) = (Arc::clone(&prog), Arc::clone(&facts));
        std::thread::spawn(move || {
            let Stmt::Assign { value, .. } = &p2.stmts[0] else {
                panic!()
            };
            assert_eq!(f2.bin_typed(value), (true, true));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn unknown_shapes_not_stored() {
        let prog = parse("$x = $a['k'];").unwrap();
        let Stmt::Assign { value, .. } = &prog.stmts[0] else {
            panic!()
        };
        let mut f = AnalysisFacts::new();
        let id = f.intern_expr(value);
        f.set_key_shape(id, KeyShape::Unknown);
        assert_eq!(f.key_shape_counts(), (0, 0));
        f.set_key_shape(id, KeyShape::ConstStr);
        assert_eq!(f.key_shape_expr(value), KeyShape::ConstStr);
        assert_eq!(f.key_shape_counts(), (1, 0));
    }
}
