//! Builtin function bridge: mini-PHP builtins dispatch into the
//! [`phpaccel_core::PhpMachine`], so a script's `strtolower` goes through the string
//! accelerator in specialized mode and the software library otherwise.

use crate::eval::{Interp, RuntimeError};
use php_runtime::array::ArrayKey;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use phpaccel_core::PhpMachine;
use regex_engine::Regex;

/// What a builtin needs from the engine running it. Both the tree-walking
/// [`Interp`] and the compiled VM implement this, so every builtin has
/// exactly one definition and cannot diverge between engines.
pub trait Host {
    /// The machine all metered work flows through.
    fn machine(&mut self) -> &mut PhpMachine;
    /// Sets a variable in the current scope (`extract`).
    fn set_var(&mut self, name: &str, value: PhpValue);
    /// The compiled regex for a `preg_*` pattern argument: an
    /// analysis-time-compiled handle when the engine has one for the current
    /// call site, otherwise a runtime compile through the engine's cache.
    fn regex(&mut self, pattern: &str) -> Result<Regex, RuntimeError>;
    /// The next value of the engine's pseudo-random stream (`rand`). The
    /// stream is seeded per engine instance, so primary and reference
    /// replays of the same request agree byte-for-byte — but it is
    /// *stateful within a request*, which is exactly why the effect
    /// analysis classifies `rand` nondeterministic: skipping a call (e.g.
    /// by memoizing a caller) shifts every later draw.
    fn next_rand(&mut self) -> i64;
}

/// Seed for each engine instance's `rand` stream.
pub const RAND_SEED: u64 = 0x5EED_2017_0613;

/// The simulated wall clock `time()` returns: a fixed epoch so runs are
/// reproducible. Statically the builtin is still nondeterministic — real
/// deployments do not pin the clock.
pub const SIMULATED_EPOCH: i64 = 1_497_312_000;

/// Advances an engine's LCG rand state and returns the drawn value in
/// `0..=0x7fff_ffff` (both engines share this so they cannot diverge).
pub fn rand_step(state: &mut u64) -> i64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) & 0x7fff_ffff) as i64
}

fn arg(args: &[PhpValue], i: usize) -> PhpValue {
    args.get(i).cloned().unwrap_or(PhpValue::Null)
}

fn str_arg(args: &[PhpValue], i: usize) -> PhpStr {
    arg(args, i).to_php_string()
}

/// Every name this module dispatches on, including aliases. `php-analysis`
/// cross-checks its builtin knowledge table against this list so a new
/// builtin can't silently be treated as an unknown user call (which would
/// poison interprocedural summaries to ⊤).
pub const NAMES: &[&str] = &[
    "strlen",
    "strtolower",
    "strtoupper",
    "ucfirst",
    "ucwords",
    "trim",
    "strpos",
    "str_replace",
    "substr",
    "str_repeat",
    "sprintf",
    "htmlspecialchars",
    "strip_tags",
    "lcfirst",
    "str_word_count",
    "nl2br",
    "strcmp",
    "implode",
    "join",
    "explode",
    "count",
    "array_keys",
    "array_values",
    "in_array",
    "array_key_exists",
    "isset_key",
    "unset_key",
    "extract",
    "is_string",
    "is_int",
    "is_integer",
    "is_long",
    "is_float",
    "is_double",
    "is_bool",
    "is_array",
    "is_null",
    "is_numeric",
    "intval",
    "floatval",
    "strval",
    "abs",
    "max",
    "min",
    "preg_match",
    "preg_replace",
    "rand",
    "time",
];

/// Calls builtin `name` through the tree-walking interpreter. `site` is the
/// `Expr::Call` node being evaluated, when known — `preg_*` consult it for
/// analysis-time-compiled patterns.
///
/// # Errors
///
/// Returns [`RuntimeError`] for unknown builtins or bad arguments.
pub fn call(
    interp: &mut Interp<'_>,
    name: &str,
    args: Vec<PhpValue>,
    site: Option<&crate::ast::Expr>,
) -> Result<PhpValue, RuntimeError> {
    struct InterpHost<'a, 'm> {
        interp: &'a mut Interp<'m>,
        site: Option<&'a crate::ast::Expr>,
    }
    impl Host for InterpHost<'_, '_> {
        fn machine(&mut self) -> &mut PhpMachine {
            self.interp.machine()
        }
        fn set_var(&mut self, name: &str, value: PhpValue) {
            self.interp.set_var_public(name, value);
        }
        fn regex(&mut self, pattern: &str) -> Result<Regex, RuntimeError> {
            self.interp.regex_for(self.site, pattern)
        }
        fn next_rand(&mut self) -> i64 {
            self.interp.next_rand()
        }
    }
    dispatch(&mut InterpHost { interp, site }, name, args)
}

/// Calls builtin `name` on any [`Host`] — the single engine-agnostic
/// implementation of every builtin.
///
/// # Errors
///
/// Returns [`RuntimeError`] for unknown builtins or bad arguments.
pub fn dispatch<H: Host>(
    host: &mut H,
    name: &str,
    args: Vec<PhpValue>,
) -> Result<PhpValue, RuntimeError> {
    let m = host.machine();
    match name {
        "strlen" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::Int(m.ctx().strlib().strlen(&s) as i64))
        }
        "strtolower" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.strtolower(&s)))
        }
        "strtoupper" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.strtoupper(&s)))
        }
        "ucfirst" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.ctx().strlib().ucfirst(&s)))
        }
        "ucwords" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.ctx().strlib().ucwords(&s)))
        }
        "trim" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.trim(&s)))
        }
        "strpos" => {
            let hay = str_arg(&args, 0);
            let needle = str_arg(&args, 1);
            let from = if args.len() > 2 {
                arg(&args, 2).to_int().max(0) as usize
            } else {
                0
            };
            match m.strpos(&hay, needle.as_bytes(), from) {
                Some(p) => Ok(PhpValue::Int(p as i64)),
                None => Ok(PhpValue::Bool(false)),
            }
        }
        "str_replace" => {
            let search = str_arg(&args, 0);
            let replace = str_arg(&args, 1);
            let subject = str_arg(&args, 2);
            let (out, _) = m.str_replace(search.as_bytes(), replace.as_bytes(), &subject);
            Ok(PhpValue::str(out))
        }
        "substr" => {
            let s = str_arg(&args, 0);
            let start = arg(&args, 1).to_int();
            let len = args.get(2).map(|v| v.to_int());
            Ok(PhpValue::str(m.ctx().strlib().substr(&s, start, len)))
        }
        "str_repeat" => {
            let s = str_arg(&args, 0);
            let n = arg(&args, 1).to_int().max(0) as usize;
            // A script-controlled count must not be able to abort the
            // process on a giant allocation.
            const MAX_REPEAT_BYTES: usize = 64 << 20;
            if s.as_bytes().len().saturating_mul(n) > MAX_REPEAT_BYTES {
                return Err(RuntimeError::new("str_repeat result too large"));
            }
            Ok(PhpValue::str(m.ctx().strlib().str_repeat(&s, n)))
        }
        "sprintf" => {
            let f = str_arg(&args, 0);
            Ok(PhpValue::str(m.sprintf(&f, &args[1..])))
        }
        "htmlspecialchars" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.htmlspecialchars(&s)))
        }
        "strip_tags" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.strip_tags(&s)))
        }
        "lcfirst" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.ctx().strlib().lcfirst(&s)))
        }
        "str_word_count" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::Int(m.ctx().strlib().str_word_count(&s) as i64))
        }
        "nl2br" => {
            let s = str_arg(&args, 0);
            Ok(PhpValue::str(m.nl2br(&s)))
        }
        "strcmp" => {
            let a = str_arg(&args, 0);
            let b = str_arg(&args, 1);
            Ok(PhpValue::Int(match m.strcmp(&a, &b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            }))
        }
        "implode" | "join" => {
            let glue = str_arg(&args, 0);
            let PhpValue::Array(rc) = arg(&args, 1) else {
                return Err(RuntimeError::new("implode expects an array"));
            };
            let pieces: Vec<PhpStr> = rc.borrow().values().map(|v| v.to_php_string()).collect();
            Ok(PhpValue::str(m.implode(glue.as_bytes(), &pieces)))
        }
        "explode" => {
            let sep = str_arg(&args, 0);
            let s = str_arg(&args, 1);
            if sep.is_empty() {
                return Err(RuntimeError::new("explode with empty separator"));
            }
            let parts = m.explode(sep.as_bytes(), &s);
            let mut arr = m.new_array();
            for p in parts {
                m.array_push(&mut arr, PhpValue::str(p));
            }
            Ok(PhpValue::array(arr))
        }
        "count" => match arg(&args, 0) {
            PhpValue::Array(rc) => Ok(PhpValue::Int(rc.borrow().len() as i64)),
            PhpValue::Null => Ok(PhpValue::Int(0)),
            _ => Ok(PhpValue::Int(1)),
        },
        "array_keys" => {
            let PhpValue::Array(rc) = arg(&args, 0) else {
                return Err(RuntimeError::new("array_keys expects an array"));
            };
            let keys: Vec<ArrayKey> = rc.borrow().keys().cloned().collect();
            let mut out = m.new_array();
            for k in keys {
                let v = match k {
                    ArrayKey::Int(i) => PhpValue::Int(i),
                    ArrayKey::Str(s) => PhpValue::str(s),
                };
                m.array_push(&mut out, v);
            }
            Ok(PhpValue::array(out))
        }
        "array_values" => {
            let PhpValue::Array(rc) = arg(&args, 0) else {
                return Err(RuntimeError::new("array_values expects an array"));
            };
            let values: Vec<PhpValue> = rc.borrow().values().cloned().collect();
            let mut out = m.new_array();
            for v in values {
                m.array_push(&mut out, v);
            }
            Ok(PhpValue::array(out))
        }
        "in_array" => {
            let needle = arg(&args, 0);
            let PhpValue::Array(rc) = arg(&args, 1) else {
                return Err(RuntimeError::new("in_array expects an array"));
            };
            let found = rc.borrow().values().any(|v| v.loose_eq(&needle));
            Ok(PhpValue::Bool(found))
        }
        "array_key_exists" | "isset_key" => {
            let key = arg(&args, 0);
            let PhpValue::Array(rc) = arg(&args, 1) else {
                return Err(RuntimeError::new("array_key_exists expects an array"));
            };
            let k = match key {
                PhpValue::Int(i) => ArrayKey::Int(i),
                other => ArrayKey::Str(other.to_php_string()),
            };
            let exists = rc.borrow().contains_key(&k);
            Ok(PhpValue::Bool(exists))
        }
        "unset_key" => {
            let key = arg(&args, 0);
            let PhpValue::Array(rc) = arg(&args, 1) else {
                return Err(RuntimeError::new("unset_key expects an array"));
            };
            let k = match key {
                PhpValue::Int(i) => ArrayKey::Int(i),
                other => ArrayKey::Str(other.to_php_string()),
            };
            let removed = m.array_remove(&mut rc.borrow_mut(), &k).is_some();
            Ok(PhpValue::Bool(removed))
        }
        "extract" => {
            let PhpValue::Array(rc) = arg(&args, 0) else {
                return Err(RuntimeError::new("extract expects an array"));
            };
            let pairs = {
                let borrowed = rc.borrow();
                m.foreach(&borrowed)
            };
            let mut n = 0;
            for (k, v) in pairs {
                if let ArrayKey::Str(name) = k {
                    host.set_var(&name.to_string_lossy(), v);
                    n += 1;
                }
            }
            Ok(PhpValue::Int(n))
        }
        "is_string" => Ok(PhpValue::Bool(matches!(arg(&args, 0), PhpValue::Str(_)))),
        "is_int" | "is_integer" | "is_long" => {
            Ok(PhpValue::Bool(matches!(arg(&args, 0), PhpValue::Int(_))))
        }
        "is_float" | "is_double" => Ok(PhpValue::Bool(matches!(arg(&args, 0), PhpValue::Float(_)))),
        "is_bool" => Ok(PhpValue::Bool(matches!(arg(&args, 0), PhpValue::Bool(_)))),
        "is_array" => Ok(PhpValue::Bool(matches!(arg(&args, 0), PhpValue::Array(_)))),
        "is_null" => Ok(PhpValue::Bool(matches!(arg(&args, 0), PhpValue::Null))),
        "is_numeric" => {
            let v = arg(&args, 0);
            let yes = match &v {
                PhpValue::Int(_) | PhpValue::Float(_) => true,
                PhpValue::Str(s) => {
                    let t = s.to_string_lossy();
                    !t.trim().is_empty() && t.trim().parse::<f64>().is_ok()
                }
                _ => false,
            };
            Ok(PhpValue::Bool(yes))
        }
        "intval" => Ok(PhpValue::Int(arg(&args, 0).to_int())),
        "floatval" => Ok(PhpValue::Float(arg(&args, 0).to_float())),
        "strval" => Ok(PhpValue::str(arg(&args, 0).to_php_string())),
        "abs" => {
            let v = arg(&args, 0);
            Ok(match v {
                PhpValue::Float(f) => PhpValue::Float(f.abs()),
                // wrapping_abs: plain `abs` overflows on i64::MIN.
                other => PhpValue::Int(other.to_int().wrapping_abs()),
            })
        }
        "max" => {
            let a = arg(&args, 0);
            let b = arg(&args, 1);
            Ok(if a.to_float() >= b.to_float() { a } else { b })
        }
        "min" => {
            let a = arg(&args, 0);
            let b = arg(&args, 1);
            Ok(if a.to_float() <= b.to_float() { a } else { b })
        }
        "preg_match" => {
            let pattern = str_arg(&args, 0).to_string_lossy();
            let subject = str_arg(&args, 1);
            let re = host.regex(&pattern)?;
            let matched = host.machine().preg_match(&re, &subject);
            Ok(PhpValue::Int(matched as i64))
        }
        "preg_replace" => {
            let pattern = str_arg(&args, 0).to_string_lossy();
            let replacement = str_arg(&args, 1);
            let subject = str_arg(&args, 2);
            let re = host.regex(&pattern)?;
            // Not `texturize`: its HV-preserving whitespace padding would
            // leak into the result when the replacement is shorter than the
            // match. A lone replace needs exact splicing.
            let out = host
                .machine()
                .preg_replace(&re, &subject, replacement.as_bytes());
            Ok(PhpValue::str(out))
        }
        "rand" => {
            let draw = host.next_rand();
            if args.len() >= 2 {
                let lo = arg(&args, 0).to_int();
                let hi = arg(&args, 1).to_int();
                if hi < lo {
                    return Err(RuntimeError::new("rand: max is smaller than min"));
                }
                let span = (hi - lo) as u64 + 1;
                Ok(PhpValue::Int(lo + (draw as u64 % span) as i64))
            } else {
                Ok(PhpValue::Int(draw))
            }
        }
        "time" => Ok(PhpValue::Int(SIMULATED_EPOCH)),
        other => Err(RuntimeError::new(format!("undefined builtin {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::Interp;
    use phpaccel_core::PhpMachine;

    fn eval_expr(src: &str) -> String {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        i.run(&format!("echo {src};")).unwrap();
        String::from_utf8_lossy(i.output()).into_owned()
    }

    #[test]
    fn string_builtins() {
        assert_eq!(eval_expr("strlen('abc')"), "3");
        assert_eq!(eval_expr("strtoupper('aB')"), "AB");
        assert_eq!(eval_expr("ucfirst('php')"), "Php");
        assert_eq!(eval_expr("ucwords('a b')"), "A B");
        assert_eq!(eval_expr("str_repeat('ab', 3)"), "ababab");
        assert_eq!(eval_expr("strcmp('a', 'b')"), "-1");
        assert_eq!(eval_expr("sprintf('%s=%d', 'x', 5)"), "x=5");
        assert_eq!(eval_expr("nl2br('a\\nb')"), "a<br />\nb");
    }

    #[test]
    fn numeric_builtins() {
        assert_eq!(eval_expr("abs(-5)"), "5");
        assert_eq!(eval_expr("max(2, 7)"), "7");
        assert_eq!(eval_expr("min(2, 7)"), "2");
        assert_eq!(eval_expr("intval('42x')"), "42");
    }

    #[test]
    fn array_builtins() {
        assert_eq!(eval_expr("count(array(1, 2, 3))"), "3");
        assert_eq!(eval_expr("in_array(2, array(1, 2))"), "1");
        assert_eq!(eval_expr("in_array(9, array(1, 2))"), "");
        assert_eq!(
            eval_expr("implode(',', array_keys(array('a' => 1, 'b' => 2)))"),
            "a,b"
        );
        assert_eq!(
            eval_expr("implode(',', array_values(array('a' => 9, 'b' => 8)))"),
            "9,8"
        );
        assert_eq!(eval_expr("array_key_exists('a', array('a' => 1))"), "1");
    }

    #[test]
    fn type_predicate_builtins() {
        assert_eq!(eval_expr("is_string('x')"), "1");
        assert_eq!(eval_expr("is_string(1)"), "");
        assert_eq!(eval_expr("is_int(3)"), "1");
        assert_eq!(eval_expr("is_float(1.5)"), "1");
        assert_eq!(eval_expr("is_bool(true)"), "1");
        assert_eq!(eval_expr("is_array(array(1))"), "1");
        assert_eq!(eval_expr("is_null(null)"), "1");
        assert_eq!(eval_expr("is_numeric('42')"), "1");
        assert_eq!(eval_expr("is_numeric(' 3.5 ')"), "1");
        assert_eq!(eval_expr("is_numeric('4x')"), "");
        assert_eq!(eval_expr("is_numeric(array(1))"), "");
    }

    #[test]
    fn strpos_false_on_miss() {
        assert_eq!(eval_expr("strpos('abc', 'z')"), "");
        assert_eq!(eval_expr("strpos('abcabc', 'bc', 2)"), "4");
    }

    #[test]
    fn unknown_builtin_errors() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        assert!(i.run("frobnicate(1);").is_err());
    }

    #[test]
    fn abs_of_int_min_does_not_panic() {
        assert_eq!(
            eval_expr("abs(-9223372036854775807 - 1)"),
            "-9223372036854775808"
        );
    }

    #[test]
    fn rand_and_time_are_deterministic_per_engine() {
        // Two fresh engines draw identical streams (replay soundness)…
        let a = eval_expr("rand(1, 6) . ',' . rand(1, 6) . ',' . time()");
        let b = eval_expr("rand(1, 6) . ',' . rand(1, 6) . ',' . time()");
        assert_eq!(a, b);
        // …the draws stay in range, and the clock is the simulated epoch.
        let parts: Vec<&str> = a.split(',').collect();
        for p in &parts[..2] {
            let v: i64 = p.parse().unwrap();
            assert!((1..=6).contains(&v), "{v}");
        }
        assert_eq!(parts[2], super::SIMULATED_EPOCH.to_string());
        // rand is stateful *within* an engine: the stream advances.
        let wide = eval_expr("rand() . ',' . rand()");
        let halves: Vec<&str> = wide.split(',').collect();
        assert_ne!(halves[0], halves[1], "stream must advance");
    }

    #[test]
    fn rand_rejects_inverted_range() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        assert!(i.run("echo rand(6, 1);").is_err());
    }

    #[test]
    fn huge_str_repeat_errors_instead_of_aborting() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        let err = i
            .run("echo str_repeat('aaaaaaaa', 9000000000);")
            .expect_err("must refuse the allocation");
        assert!(err.message.contains("too large"), "{err}");
    }
}

#[cfg(test)]
mod strip_tests {
    use crate::eval::Interp;
    use phpaccel_core::PhpMachine;

    fn eval_both(src: &str) -> (String, String) {
        let run = |mut m: PhpMachine| {
            let mut i = Interp::new(&mut m);
            i.run(src).unwrap();
            String::from_utf8_lossy(i.output()).into_owned()
        };
        (run(PhpMachine::baseline()), run(PhpMachine::specialized()))
    }

    #[test]
    fn strip_tags_agrees_across_modes() {
        let (b, s) = eval_both("echo strip_tags('<p>Hello <b>world</b>!</p>');");
        assert_eq!(b, "Hello world!");
        assert_eq!(b, s);
    }

    #[test]
    fn strip_tags_clean_passthrough() {
        let (b, s) = eval_both("echo strip_tags('no markup here at all');");
        assert_eq!(b, "no markup here at all");
        assert_eq!(b, s);
    }

    #[test]
    fn lcfirst_and_word_count() {
        let (b, s) = eval_both("echo lcfirst('PHP'), '|', str_word_count(\"it's a fine day\");");
        assert_eq!(b, "pHP|4");
        assert_eq!(b, s);
    }
}
