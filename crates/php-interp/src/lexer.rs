//! Tokenizer for the mini-PHP subset.

use std::fmt;

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `$name`
    Variable(String),
    /// Bare identifier (function names, keywords are separated below).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, escapes processed).
    Str(String),
    /// Keywords.
    Kw(Kw),
    /// Punctuation / operators.
    Punct(Punct),
}

/// Keywords of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `function`
    Function,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `foreach`
    Foreach,
    /// `as`
    As,
    /// `echo`
    Echo,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `array`
    Array,
    /// `global`
    Global,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `.=`
    DotAssign,
    /// `+=`
    PlusAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `.`
    Dot,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `=>`
    FatArrow,
    /// `++`
    Incr,
    /// `--`
    Decr,
    /// `?`
    Question,
    /// `:`
    Colon,
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Message.
    pub message: String,
    /// Byte offset.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        message: "empty variable name".into(),
                        position: i,
                    });
                }
                out.push(Token::Variable(src[start..j].to_owned()));
                i = j;
            }
            b'\'' | b'"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= b.len() {
                        return Err(LexError {
                            message: "unterminated string".into(),
                            position: i,
                        });
                    }
                    if b[j] == quote {
                        break;
                    }
                    if b[j] == b'\\' && j + 1 < b.len() {
                        let e = b[j + 1];
                        let decoded = match e {
                            b'n' => Some('\n'),
                            b't' => Some('\t'),
                            b'r' => Some('\r'),
                            b'\\' => Some('\\'),
                            b'\'' => Some('\''),
                            b'"' => Some('"'),
                            b'$' => Some('$'),
                            b'0' => Some('\0'),
                            _ => None,
                        };
                        match decoded {
                            Some(c) => s.push(c),
                            None => {
                                s.push('\\');
                                s.push(e as char);
                            }
                        }
                        j += 2;
                    } else {
                        s.push(b[j] as char);
                        j += 1;
                    }
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                    if b[j] == b'.' {
                        if !b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                            break;
                        }
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &src[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float {text}"),
                        position: start,
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad int {text}"),
                        position: start,
                    })?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let word = &src[start..j];
                let tok = match word {
                    "function" => Token::Kw(Kw::Function),
                    "return" => Token::Kw(Kw::Return),
                    "if" => Token::Kw(Kw::If),
                    "else" => Token::Kw(Kw::Else),
                    "while" => Token::Kw(Kw::While),
                    "for" => Token::Kw(Kw::For),
                    "foreach" => Token::Kw(Kw::Foreach),
                    "as" => Token::Kw(Kw::As),
                    "echo" => Token::Kw(Kw::Echo),
                    "true" | "TRUE" => Token::Kw(Kw::True),
                    "false" | "FALSE" => Token::Kw(Kw::False),
                    "null" | "NULL" => Token::Kw(Kw::Null),
                    "array" => Token::Kw(Kw::Array),
                    "global" => Token::Kw(Kw::Global),
                    "break" => Token::Kw(Kw::Break),
                    "continue" => Token::Kw(Kw::Continue),
                    _ => Token::Ident(word.to_owned()),
                };
                out.push(tok);
                i = j;
            }
            _ => {
                // Compare raw bytes, not a `str` slice: `i + 2` may fall
                // inside a multi-byte UTF-8 character and slicing would
                // panic on arbitrary input.
                let two = (c, b.get(i + 1).copied());
                let (p, adv) = match two {
                    (b'=', Some(b'=')) => (Punct::Eq, 2),
                    (b'!', Some(b'=')) => (Punct::Ne, 2),
                    (b'<', Some(b'=')) => (Punct::Le, 2),
                    (b'>', Some(b'=')) => (Punct::Ge, 2),
                    (b'&', Some(b'&')) => (Punct::AndAnd, 2),
                    (b'|', Some(b'|')) => (Punct::OrOr, 2),
                    (b'=', Some(b'>')) => (Punct::FatArrow, 2),
                    (b'.', Some(b'=')) => (Punct::DotAssign, 2),
                    (b'+', Some(b'=')) => (Punct::PlusAssign, 2),
                    (b'+', Some(b'+')) => (Punct::Incr, 2),
                    (b'-', Some(b'-')) => (Punct::Decr, 2),
                    _ => {
                        let p = match c {
                            b'(' => Punct::LParen,
                            b')' => Punct::RParen,
                            b'{' => Punct::LBrace,
                            b'}' => Punct::RBrace,
                            b'[' => Punct::LBracket,
                            b']' => Punct::RBracket,
                            b';' => Punct::Semi,
                            b',' => Punct::Comma,
                            b'=' => Punct::Assign,
                            b'<' => Punct::Lt,
                            b'>' => Punct::Gt,
                            b'+' => Punct::Plus,
                            b'-' => Punct::Minus,
                            b'*' => Punct::Star,
                            b'/' => Punct::Slash,
                            b'%' => Punct::Percent,
                            b'.' => Punct::Dot,
                            b'!' => Punct::Not,
                            b'?' => Punct::Question,
                            b':' => Punct::Colon,
                            other => {
                                return Err(LexError {
                                    message: format!("unexpected character {:?}", other as char),
                                    position: i,
                                })
                            }
                        };
                        (p, 1)
                    }
                };
                out.push(Token::Punct(p));
                i += adv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multibyte_utf8_errors_instead_of_panicking() {
        // `€` is a 3-byte character: the old two-char `str` slice landed
        // mid-character and panicked. Bare multibyte input must lex-error.
        assert!(lex("€").is_err());
        assert!(lex("a €").is_err());
        // Inside string literals multibyte bytes are carried through.
        assert!(lex("$x = '€ ok';").is_ok());
    }

    #[test]
    fn lexes_assignment() {
        let t = lex("$x = 42;").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Variable("x".into()),
                Token::Punct(Punct::Assign),
                Token::Int(42),
                Token::Punct(Punct::Semi),
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let t = lex(r#"$s = "a\nb\"c";"#).unwrap();
        assert_eq!(t[2], Token::Str("a\nb\"c".into()));
        let t = lex(r"$s = 'it\'s';").unwrap();
        assert_eq!(t[2], Token::Str("it's".into()));
    }

    #[test]
    fn lexes_floats_and_member_dot() {
        let t = lex("$a = 1.5 . 2;").unwrap();
        assert_eq!(t[2], Token::Float(1.5));
        assert_eq!(t[3], Token::Punct(Punct::Dot));
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let t = lex("foreach ($a as $k => $v) { strlen($v); }").unwrap();
        assert_eq!(t[0], Token::Kw(Kw::Foreach));
        assert!(t.contains(&Token::Ident("strlen".into())));
        assert!(t.contains(&Token::Punct(Punct::FatArrow)));
    }

    #[test]
    fn comments_skipped() {
        let t = lex("// line\n# hash\n/* block */ $x;").unwrap();
        assert_eq!(t[0], Token::Variable("x".into()));
    }

    #[test]
    fn two_char_ops() {
        let t = lex("$a .= $b; $c++; $d == $e;").unwrap();
        assert!(t.contains(&Token::Punct(Punct::DotAssign)));
        assert!(t.contains(&Token::Punct(Punct::Incr)));
        assert!(t.contains(&Token::Punct(Punct::Eq)));
    }

    #[test]
    fn errors() {
        assert!(lex("$").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("$a = @;").is_err());
    }
}
