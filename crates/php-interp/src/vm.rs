//! The compiled-bytecode VM: executes a [`CompiledUnit`] over a
//! [`PhpMachine`].
//!
//! Dispatch charges one µop per opcode to the `jit_compiled_code` bucket
//! (the tree-walker charges three per AST node visit, six per statement), so
//! the same script costs measurably less interpreter overhead — and a fused
//! unit additionally skips the transient string allocations the generic
//! lowering performs. Program *output* is byte-identical to
//! [`crate::Interp`] on every program: the differential harness and the
//! serving layer's replay machinery gate exactly that.
//!
//! The VM mirrors the tree-walker's observable structure one-for-one:
//! symbol tables are [`PhpArray`]s (hash-map traffic), function frames free
//! their tables on scope exit, loop iteration caps and the recursion limit
//! use the same constants and messages, and builtins run through the shared
//! [`builtins::Host`] dispatch.

use crate::builtins;
use crate::compile::{CompiledUnit, Op, OpKind, OP_KIND_COUNT};
use crate::eval::{binop_eval, index_read, key_of, RuntimeError, MAX_DEPTH};
use crate::memo::{MemoHandle, MemoHit, MemoValue};
use php_runtime::array::{ArrayKey, PhpArray};
use php_runtime::value::PhpValue;
use php_runtime::AccessStatic;
use phpaccel_core::{KeyShapeHint, PhpMachine};
use regex_engine::Regex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// µops charged to the JIT bucket per executed opcode (vs 3 per AST node in
/// the tree-walker). A fused superinstruction is still one opcode: one
/// charge.
pub const VM_OP_UOPS: u64 = 1;

/// Per-opcode and adjacent-pair execution counters for one VM run.
#[derive(Debug, Clone)]
pub struct OpcodeTally {
    counts: [u64; OP_KIND_COUNT],
    /// Dynamic (prev, next) pairs for *statically adjacent* opcodes — the
    /// population the superinstruction selection was measured from.
    pairs: HashMap<(OpKind, OpKind), u64>,
    /// Total opcodes executed.
    pub total: u64,
    /// Fused superinstructions executed.
    pub fused: u64,
    /// Transient string allocations elided by fused opcodes.
    pub transients_elided: u64,
}

impl Default for OpcodeTally {
    fn default() -> Self {
        OpcodeTally {
            counts: [0; OP_KIND_COUNT],
            pairs: HashMap::new(),
            total: 0,
            fused: 0,
            transients_elided: 0,
        }
    }
}

impl OpcodeTally {
    /// Executions of one opcode kind.
    pub fn count(&self, k: OpKind) -> u64 {
        self.counts[k as usize]
    }

    /// Opcode kinds by execution count, descending.
    pub fn top_ops(&self) -> Vec<(OpKind, u64)> {
        let mut v: Vec<(OpKind, u64)> = OpKind::all()
            .into_iter()
            .map(|k| (k, self.counts[k as usize]))
            .filter(|(_, n)| *n > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.name().cmp(b.0.name())));
        v
    }

    /// Statically adjacent opcode pairs by execution count, descending.
    pub fn top_pairs(&self) -> Vec<((OpKind, OpKind), u64)> {
        let mut v: Vec<((OpKind, OpKind), u64)> =
            self.pairs.iter().map(|(k, n)| (*k, *n)).collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0 .0.name().cmp(b.0 .0.name()))
                .then(a.0 .1.name().cmp(b.0 .1.name()))
        });
        v
    }

    fn note(&mut self, kind: OpKind, adjacent_prev: Option<OpKind>) {
        self.counts[kind as usize] += 1;
        self.total += 1;
        if kind.is_fused() {
            self.fused += 1;
        }
        if let Some(prev) = adjacent_prev {
            *self.pairs.entry((prev, kind)).or_insert(0) += 1;
        }
    }
}

/// How one body's execution ended.
enum ChunkExit {
    /// Ran off the end.
    Finished,
    /// Hit a `Return` opcode.
    Returned(PhpValue),
}

struct Scope {
    table: PhpArray,
    globals: HashSet<String>,
}

/// One in-flight memoizable call between its `MemoEnter` miss and its
/// `MemoStore`.
struct PendingMemo {
    site: u32,
    key: String,
    /// Handle clones of the arguments, so the key can be rebuilt at store
    /// time: a callee that mutated an argument (or a dep through an alias)
    /// changes the rebuilt key and the entry is not stored.
    args: Vec<PhpValue>,
    out_mark: usize,
}

/// The VM. Holds the same per-request state as [`crate::Interp`] (scope
/// stack of symbol-table arrays, output buffer, regex cache, recursion
/// depth) plus the bytecode machine state (value/iterator/guard stacks and
/// the runtime function-binding table).
pub struct Vm<'m> {
    machine: &'m mut PhpMachine,
    unit: Arc<CompiledUnit>,
    scopes: Vec<Scope>,
    stack: Vec<PhpValue>,
    iters: Vec<(Vec<(ArrayKey, PhpValue)>, usize)>,
    guards: Vec<u64>,
    /// Live name → function-table bindings (seeded from the hoisted table,
    /// updated by `DefineFunc`).
    funcs: HashMap<String, u32>,
    output: Vec<u8>,
    regex_cache: HashMap<String, Regex>,
    regex_compiles: u64,
    depth: usize,
    tally: OpcodeTally,
    /// Shared memo tier; `MemoEnter`/`MemoStore` are no-ops when absent.
    memo: Option<MemoHandle>,
    /// In-flight memo sites, LIFO — every executed `MemoEnter` that falls
    /// through pushes one entry (`None` when the key was unbuildable) and
    /// the matching `MemoStore` pops it.
    memo_pending: Vec<Option<PendingMemo>>,
    /// Deterministic per-request PRNG state for the `rand` builtin
    /// (mirrors [`crate::Interp`]'s).
    rand_state: u64,
}

impl<'m> Vm<'m> {
    /// Creates a VM for one request over `unit`.
    pub fn new(machine: &'m mut PhpMachine, unit: Arc<CompiledUnit>) -> Self {
        let table = machine.new_array();
        let funcs = unit.func_index.clone();
        Vm {
            machine,
            unit,
            scopes: vec![Scope {
                table,
                globals: HashSet::new(),
            }],
            stack: Vec::new(),
            iters: Vec::new(),
            guards: Vec::new(),
            funcs,
            output: Vec::new(),
            regex_cache: HashMap::new(),
            regex_compiles: 0,
            depth: 0,
            tally: OpcodeTally::default(),
            memo: None,
            memo_pending: Vec::new(),
            rand_state: builtins::RAND_SEED,
        }
    }

    /// Attaches the shared cross-request memo tier. Without one every
    /// `MemoEnter`/`MemoStore` is a no-op and the unit runs exactly as
    /// compiled.
    pub fn set_memo(&mut self, handle: MemoHandle) {
        self.memo = Some(handle);
    }

    /// Detaches the memo tier.
    pub fn clear_memo(&mut self) {
        self.memo = None;
    }

    /// The machine.
    pub fn machine(&mut self) -> &mut PhpMachine {
        self.machine
    }

    /// Everything `echo`ed so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Takes the output buffer.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// The opcode execution counters accumulated so far.
    pub fn tally(&self) -> &OpcodeTally {
        &self.tally
    }

    /// Runtime regex compiles performed (cache misses; precompiled patterns
    /// never count).
    pub fn regex_compile_count(&self) -> u64 {
        self.regex_compiles
    }

    /// Sets a variable in the current scope (workload drivers bind request
    /// variables through this, mirroring [`crate::Interp::set_var_public`]).
    pub fn set_var_public(&mut self, name: &str, value: PhpValue) {
        self.set_var(name, value);
    }

    /// Runs the unit's main body.
    ///
    /// Attaching the unit's facts side-channel mirrors
    /// [`crate::Interp::set_facts`]: heap free-list pre-seeding, sieve
    /// preloading, and the taint/arena savings bookkeeping happen before the
    /// first opcode, and the per-opcode execution counters are flushed into
    /// the profiler afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on evaluation failure, exactly as the
    /// tree-walker would for the same program.
    pub fn run(&mut self) -> Result<(), RuntimeError> {
        let unit = Arc::clone(&self.unit);
        if unit.specialized {
            self.machine
                .apply_prebuilt(&unit.alloc_size_hints, unit.has_precompiled_regex);
            self.machine
                .ctx()
                .profiler()
                .note_taint_lints(unit.taint_lints);
            self.machine
                .ctx()
                .profiler()
                .note_arena_safe_sites(unit.arena_safe_sites);
        }
        let result = self.run_chunk(&unit.main).map(|_| ());
        // Main never unwinds its stacks on error; clear them so a reused VM
        // (not a pattern today, but cheap insurance) starts clean.
        self.stack.clear();
        self.iters.clear();
        self.guards.clear();
        self.memo_pending.clear();
        self.machine.ctx().profiler().note_vm_execution(
            self.tally.total,
            self.tally.fused,
            self.tally.transients_elided,
        );
        result
    }

    fn fuel_step(&mut self) -> Result<(), RuntimeError> {
        if self.machine.ctx().consume_fuel(1) {
            Ok(())
        } else {
            Err(RuntimeError::timeout("maximum execution budget exceeded"))
        }
    }

    fn scope_index_for(&self, name: &str) -> usize {
        let cur = self.scopes.len() - 1;
        if cur > 0 && self.scopes[cur].globals.contains(name) {
            0
        } else {
            cur
        }
    }

    fn get_var_static(&mut self, name: &str, st: AccessStatic, hint: KeyShapeHint) -> PhpValue {
        let idx = self.scope_index_for(name);
        let table = std::mem::replace(&mut self.scopes[idx].table, PhpArray::new());
        let v = self
            .machine
            .array_get_static(&table, &ArrayKey::from(name), st, hint)
            .unwrap_or(PhpValue::Null);
        self.scopes[idx].table = table;
        v
    }

    fn set_var_static(
        &mut self,
        name: &str,
        value: PhpValue,
        st: AccessStatic,
        hint: KeyShapeHint,
    ) {
        let idx = self.scope_index_for(name);
        let mut table = std::mem::replace(&mut self.scopes[idx].table, PhpArray::new());
        self.machine
            .array_set_static(&mut table, ArrayKey::from(name), value, st, hint);
        self.scopes[idx].table = table;
        if idx == 0 && self.memo.is_some() {
            self.memo_invalidate_global(name);
        }
    }

    /// A global was (re)written: purge memo entries whose fingerprint names
    /// it. Freshness/capacity only — soundness comes from dep *values* being
    /// part of every key.
    fn memo_invalidate_global(&mut self, name: &str) {
        if let Some(handle) = &self.memo {
            let n = handle.invalidate(name);
            if n > 0 {
                self.machine.ctx().profiler().note_memo_invalidations(n);
            }
        }
    }

    fn set_var(&mut self, name: &str, value: PhpValue) {
        self.set_var_static(name, value, AccessStatic::default(), KeyShapeHint::Unknown);
    }

    fn get_var(&mut self, name: &str) -> PhpValue {
        self.get_var_static(name, AccessStatic::default(), KeyShapeHint::Unknown)
    }

    fn pop(&mut self) -> PhpValue {
        self.stack
            .pop()
            .expect("compiler-verified stack discipline")
    }

    fn pop_args(&mut self, argc: u32) -> Vec<PhpValue> {
        let at = self.stack.len() - argc as usize;
        self.stack.split_off(at)
    }

    fn compile_regex(&mut self, pattern: &str) -> Result<Regex, RuntimeError> {
        if !self.regex_cache.contains_key(pattern) {
            let inner = crate::eval::strip_delimiters(pattern)
                .ok_or_else(|| RuntimeError::new(format!("bad preg pattern {pattern:?}")))?;
            let re =
                Regex::new(inner).map_err(|e| RuntimeError::new(format!("regex error: {e}")))?;
            self.regex_compiles += 1;
            self.regex_cache.insert(pattern.to_owned(), re);
        }
        Ok(self.regex_cache[pattern].clone())
    }

    fn call_builtin(
        &mut self,
        name: &str,
        args: Vec<PhpValue>,
        regex: Option<u32>,
    ) -> Result<PhpValue, RuntimeError> {
        struct VmHost<'a, 'm> {
            vm: &'a mut Vm<'m>,
            regex: Option<u32>,
        }
        impl builtins::Host for VmHost<'_, '_> {
            fn machine(&mut self) -> &mut PhpMachine {
                self.vm.machine
            }
            fn set_var(&mut self, name: &str, value: PhpValue) {
                self.vm.set_var(name, value);
            }
            fn next_rand(&mut self) -> i64 {
                builtins::rand_step(&mut self.vm.rand_state)
            }
            fn regex(&mut self, pattern: &str) -> Result<Regex, RuntimeError> {
                if let Some(i) = self.regex {
                    let re = self.vm.unit.regexes[i as usize].clone();
                    self.vm
                        .machine
                        .ctx()
                        .profiler()
                        .note_regex_compile_avoided();
                    return Ok(re);
                }
                self.vm.compile_regex(pattern)
            }
        }
        builtins::dispatch(&mut VmHost { vm: self, regex }, name, args)
    }

    fn invoke(&mut self, func: u32, args: Vec<PhpValue>) -> Result<PhpValue, RuntimeError> {
        if self.depth >= MAX_DEPTH {
            return Err(RuntimeError::new("maximum call depth exceeded"));
        }
        self.depth += 1;
        let unit = Arc::clone(&self.unit);
        let f = &unit.funcs[func as usize];
        let table = self.machine.new_array_static(f.symtab_arena);
        self.scopes.push(Scope {
            table,
            globals: HashSet::new(),
        });
        for (i, p) in f.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(PhpValue::Null);
            self.set_var(p, v);
        }
        let stack_mark = self.stack.len();
        let iter_mark = self.iters.len();
        let guard_mark = self.guards.len();
        let memo_mark = self.memo_pending.len();
        let result = self.run_chunk(&f.code);
        // A mid-body `Return` or error leaves partial frames behind; drop
        // everything this call pushed.
        self.stack.truncate(stack_mark);
        self.iters.truncate(iter_mark);
        self.guards.truncate(guard_mark);
        self.memo_pending.truncate(memo_mark);
        // Function scope ends: its symbol table (a short-lived hash map!)
        // is freed — the pattern the hardware hash table exploits.
        let scope = self.scopes.pop().expect("scope pushed above");
        self.machine.array_free(&scope.table);
        self.depth -= 1;
        match result? {
            ChunkExit::Returned(v) => Ok(v),
            ChunkExit::Finished => Ok(PhpValue::Null),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_chunk(&mut self, code: &[Op]) -> Result<ChunkExit, RuntimeError> {
        let unit = Arc::clone(&self.unit);
        let mut pc = 0usize;
        let mut prev_pc = usize::MAX;
        while pc < code.len() {
            self.fuel_step()?;
            self.machine.ctx().charge_jit(VM_OP_UOPS);
            let op = &code[pc];
            let adjacent =
                (prev_pc != usize::MAX && pc == prev_pc + 1).then(|| code[prev_pc].kind());
            self.tally.note(op.kind(), adjacent);
            prev_pc = pc;
            pc += 1;
            match op {
                Op::PushNull => self.stack.push(PhpValue::Null),
                Op::PushBool(b) => self.stack.push(PhpValue::Bool(*b)),
                Op::PushInt(i) => self.stack.push(PhpValue::Int(*i)),
                Op::PushFloat(f) => self.stack.push(PhpValue::Float(*f)),
                Op::PushStr(i) => self
                    .stack
                    .push(PhpValue::str(unit.consts[*i as usize].clone())),
                Op::Pop => {
                    self.pop();
                }
                Op::LoadVar {
                    name,
                    elide_rc,
                    const_key,
                } => {
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    let hint = if *const_key {
                        KeyShapeHint::ConstStr
                    } else {
                        KeyShapeHint::Unknown
                    };
                    let name = unit.names[*name as usize].clone();
                    let v = self.get_var_static(&name, st, hint);
                    self.stack.push(v);
                }
                Op::StoreVar {
                    name,
                    elide_rc,
                    const_key,
                } => {
                    let v = self.pop();
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    let hint = if *const_key {
                        KeyShapeHint::ConstStr
                    } else {
                        KeyShapeHint::Unknown
                    };
                    let name = unit.names[*name as usize].clone();
                    self.set_var_static(&name, v, st, hint);
                }
                Op::IndexGet { elide_rc, hint } => {
                    let key = self.pop();
                    let base = self.pop();
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    let v = index_read(self.machine, base, &key, st, *hint)?;
                    self.stack.push(v);
                }
                Op::IndexConst {
                    key,
                    elide_rc,
                    hint,
                } => {
                    let base = self.pop();
                    let kv = PhpValue::str(unit.consts[*key as usize].clone());
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    let v = index_read(self.machine, base, &kv, st, *hint)?;
                    self.stack.push(v);
                }
                Op::LoadIndexBase { name, arena } => {
                    let name = unit.names[*name as usize].clone();
                    // Only store paths flow through LoadIndexBase: an indexed
                    // write to a global is about to happen.
                    if self.memo.is_some() && self.scope_index_for(&name) == 0 {
                        self.memo_invalidate_global(&name);
                    }
                    let base = self.get_var(&name);
                    let v = match base {
                        PhpValue::Array(_) => base,
                        PhpValue::Null => {
                            let a = self.machine.new_array_static(*arena);
                            let v2 = PhpValue::array(a);
                            self.set_var(&name, v2.clone());
                            v2
                        }
                        other => {
                            return Err(RuntimeError::new(format!(
                                "cannot index into {}",
                                other.type_name()
                            )))
                        }
                    };
                    self.stack.push(v);
                }
                Op::StoreIndexKeyed { elide_rc, hint } => {
                    let key = self.pop();
                    let base = self.pop();
                    let value = self.pop();
                    let PhpValue::Array(rc) = base else {
                        unreachable!("LoadIndexBase always pushes an array");
                    };
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    let k = key_of(&key);
                    self.machine
                        .array_set_static(&mut rc.borrow_mut(), k, value, st, *hint);
                }
                Op::StoreAppend {
                    elide_rc,
                    int_append,
                } => {
                    let base = self.pop();
                    let value = self.pop();
                    let PhpValue::Array(rc) = base else {
                        unreachable!("LoadIndexBase always pushes an array");
                    };
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    self.machine
                        .array_push_static(&mut rc.borrow_mut(), value, st, *int_append);
                }
                Op::NewArray { arena } => {
                    let a = self.machine.new_array_static(*arena);
                    self.stack.push(PhpValue::array(a));
                }
                Op::ArrayInsert => {
                    let key = self.pop();
                    let value = self.pop();
                    let PhpValue::Array(rc) = self.stack.last().expect("array under insert") else {
                        unreachable!("NewArray pushed an array");
                    };
                    let rc = rc.clone();
                    let k = key_of(&key);
                    self.machine.array_set(&mut rc.borrow_mut(), k, value);
                }
                Op::ArrayAppend => {
                    let value = self.pop();
                    let PhpValue::Array(rc) = self.stack.last().expect("array under append") else {
                        unreachable!("NewArray pushed an array");
                    };
                    let rc = rc.clone();
                    self.machine.array_push(&mut rc.borrow_mut(), value);
                }
                Op::Bin {
                    op,
                    skip_lhs,
                    skip_rhs,
                    arena,
                } => {
                    let r = self.pop();
                    let l = self.pop();
                    self.machine.ctx().type_check_elidable(&l, *skip_lhs);
                    self.machine.ctx().type_check_elidable(&r, *skip_rhs);
                    let v = binop_eval(self.machine, &mut self.output, *op, l, r, *arena)?;
                    self.stack.push(v);
                }
                Op::ConcatN {
                    n,
                    skip_mask,
                    arena,
                } => {
                    let at = self.stack.len() - *n as usize;
                    let parts = self.stack.split_off(at);
                    let mut s = php_runtime::string::PhpStr::default();
                    for (i, v) in parts.iter().enumerate() {
                        self.machine
                            .ctx()
                            .type_check_elidable(v, skip_mask & (1 << i) != 0);
                        s.push_bytes(v.to_php_string().as_bytes());
                    }
                    // One transient for the whole chain: the n-2 intermediate
                    // allocations the nested lowering performs are elided.
                    self.tally.transients_elided += *n as u64 - 2;
                    let v = self.machine.transient_str_static(s, *arena);
                    self.stack.push(v);
                }
                Op::Not => {
                    let v = self.pop();
                    self.stack.push(PhpValue::Bool(!v.to_bool()));
                }
                Op::Neg => {
                    let v = self.pop();
                    self.stack.push(match v {
                        PhpValue::Float(f) => PhpValue::Float(-f),
                        other => PhpValue::Int(-other.to_int()),
                    });
                }
                Op::ToBool => {
                    let v = self.pop();
                    self.stack.push(PhpValue::Bool(v.to_bool()));
                }
                Op::Jump(t) => pc = *t as usize,
                Op::JumpIfFalsePop(t) => {
                    let v = self.pop();
                    if !v.to_bool() {
                        pc = *t as usize;
                    }
                }
                Op::JumpIfTruePeek(t) => {
                    if self.stack.last().expect("peek").to_bool() {
                        pc = *t as usize;
                    }
                }
                Op::JumpIfFalsePeek(t) => {
                    if !self.stack.last().expect("peek").to_bool() {
                        pc = *t as usize;
                    }
                }
                Op::PushGuard => self.guards.push(0),
                Op::GuardTick { msg } => {
                    let g = self.guards.last_mut().expect("guard pushed");
                    *g += 1;
                    if *g > 1_000_000 {
                        return Err(RuntimeError::new(unit.msgs[*msg as usize].clone()));
                    }
                }
                Op::PopGuard => {
                    self.guards.pop();
                }
                Op::IterInit => {
                    let v = self.pop();
                    let PhpValue::Array(rc) = v else {
                        return Err(RuntimeError::new("foreach over non-array"));
                    };
                    let pairs = {
                        let borrowed = rc.borrow();
                        self.machine.foreach(&borrowed)
                    };
                    self.iters.push((pairs, 0));
                }
                Op::IterNext {
                    value,
                    key,
                    elide_rc,
                    const_key,
                    end,
                } => {
                    let (pairs, pos) = self.iters.last_mut().expect("iter pushed");
                    if *pos >= pairs.len() {
                        pc = *end as usize;
                    } else {
                        let (k, v) = pairs[*pos].clone();
                        *pos += 1;
                        let st = AccessStatic {
                            elide_rc: *elide_rc,
                            skip_type_check: false,
                        };
                        let hint = if *const_key {
                            KeyShapeHint::ConstStr
                        } else {
                            KeyShapeHint::Unknown
                        };
                        if let Some(kn) = key {
                            let key_value = match &k {
                                ArrayKey::Int(i) => PhpValue::Int(*i),
                                ArrayKey::Str(s) => PhpValue::str(s.clone()),
                            };
                            let kn = unit.names[*kn as usize].clone();
                            self.set_var_static(&kn, key_value, st, hint);
                        }
                        let vn = unit.names[*value as usize].clone();
                        self.set_var_static(&vn, v, st, hint);
                    }
                }
                Op::IterPop => {
                    self.iters.pop();
                }
                Op::DefineFunc { func } => {
                    let name = unit.funcs[*func as usize].name.clone();
                    self.funcs.insert(name, *func);
                }
                Op::CallUser {
                    func,
                    argc,
                    summarized,
                } => {
                    let args = self.pop_args(*argc);
                    if *summarized {
                        self.machine.ctx().profiler().note_summary_applied();
                    }
                    let v = self.invoke(*func, args)?;
                    self.stack.push(v);
                }
                Op::MemoEnter { site, skip } => {
                    if let Some(handle) = self.memo.clone() {
                        let info = &unit.memo_sites[*site as usize];
                        let argc = info.argc as usize;
                        let key = {
                            let args = &self.stack[self.stack.len() - argc..];
                            // Dep values come straight off the global table:
                            // key building is bookkeeping, not program work,
                            // so it bypasses the metered accessor path.
                            let scope0 = &self.scopes[0].table;
                            handle.build_key(&info.func, args, &info.deps, |dep| {
                                scope0
                                    .get(&ArrayKey::from(dep))
                                    .cloned()
                                    .unwrap_or(PhpValue::Null)
                            })
                        };
                        match key {
                            Some(k) => {
                                if let Some(hit) = handle.tier.lookup(&k) {
                                    self.machine.ctx().profiler().note_memo_hit();
                                    let at = self.stack.len() - argc;
                                    self.stack.truncate(at);
                                    self.output.extend_from_slice(&hit.output);
                                    let v = hit.value.to_php(self.machine);
                                    self.stack.push(v);
                                    pc = *skip as usize;
                                } else {
                                    self.machine.ctx().profiler().note_memo_miss();
                                    // Handle clones only: the snapshot lets
                                    // the store rebuild the key after the
                                    // call and refuse mutation-unstable
                                    // executions.
                                    let args = self.stack[self.stack.len() - argc..].to_vec();
                                    self.memo_pending.push(Some(PendingMemo {
                                        site: *site,
                                        key: k,
                                        args,
                                        out_mark: self.output.len(),
                                    }));
                                }
                            }
                            // Unkeyable (too-deep value): run the call
                            // normally; the store below sees `None` and
                            // skips.
                            None => self.memo_pending.push(None),
                        }
                    }
                }
                Op::MemoStore { site } => {
                    if let Some(handle) = self.memo.clone() {
                        if let Some(Some(p)) = self.memo_pending.pop() {
                            debug_assert_eq!(p.site, *site, "memo enter/store pairing");
                            let info = &unit.memo_sites[*site as usize];
                            // Rebuild the key from the argument snapshot and
                            // fresh dep reads: if the callee mutated an
                            // argument or a dep through an alias the keys
                            // differ and the entry is not stored — replaying
                            // it later could skip that mutation.
                            let stable = {
                                let scope0 = &self.scopes[0].table;
                                handle
                                    .build_key(&info.func, &p.args, &info.deps, |dep| {
                                        scope0
                                            .get(&ArrayKey::from(dep))
                                            .cloned()
                                            .unwrap_or(PhpValue::Null)
                                    })
                                    .is_some_and(|k| k == p.key)
                            };
                            if stable {
                                let ret =
                                    self.stack.last().expect("CallUser pushed a return value");
                                if let Some(value) = MemoValue::from_php(ret) {
                                    let deps =
                                        info.deps.iter().map(|d| handle.dep_key(d)).collect();
                                    let output = self.output[p.out_mark..].to_vec();
                                    handle.tier.store(p.key, deps, MemoHit { value, output });
                                    self.machine.ctx().profiler().note_memo_store();
                                }
                            }
                        }
                    }
                }
                Op::CallBuiltin { name, argc, regex } => {
                    let args = self.pop_args(*argc);
                    let name = unit.names[*name as usize].clone();
                    let v = self.call_builtin(&name, args, *regex)?;
                    self.stack.push(v);
                }
                Op::CallDynamic {
                    name,
                    argc,
                    regex,
                    summarized,
                } => {
                    let args = self.pop_args(*argc);
                    let name = unit.names[*name as usize].clone();
                    let v = match self.funcs.get(&name).copied() {
                        Some(func) => {
                            // Summaries only apply when the call resolves to
                            // a user function, as in the tree-walker.
                            if *summarized {
                                self.machine.ctx().profiler().note_summary_applied();
                            }
                            self.invoke(func, args)?
                        }
                        None => self.call_builtin(&name, args, *regex)?,
                    };
                    self.stack.push(v);
                }
                Op::Return => {
                    let v = self.pop();
                    return Ok(ChunkExit::Returned(v));
                }
                Op::Echo { arena } => {
                    let v = self.pop();
                    let s = v.to_php_string();
                    // echo materializes output bytes: allocator churn
                    // (identical to the tree-walker's charging).
                    let tv = self.machine.transient_str_static(s.clone(), *arena);
                    let _ = tv;
                    self.output.extend_from_slice(s.as_bytes());
                }
                Op::EchoValue { arena } => {
                    let v = self.pop();
                    self.echo_fast(v, *arena);
                }
                Op::EchoConst { s } => {
                    self.output
                        .extend_from_slice(unit.consts[*s as usize].as_bytes());
                    self.tally.transients_elided += 1;
                }
                Op::EchoVar {
                    name,
                    elide_rc,
                    const_key,
                    arena,
                } => {
                    let st = AccessStatic {
                        elide_rc: *elide_rc,
                        skip_type_check: false,
                    };
                    let hint = if *const_key {
                        KeyShapeHint::ConstStr
                    } else {
                        KeyShapeHint::Unknown
                    };
                    let name = unit.names[*name as usize].clone();
                    let v = self.get_var_static(&name, st, hint);
                    let arena = *arena;
                    self.echo_fast(v, arena);
                }
                Op::Global { name } => {
                    let name = unit.names[*name as usize].clone();
                    let cur = self.scopes.len() - 1;
                    self.scopes[cur].globals.insert(name);
                }
                Op::Fail { msg } => {
                    return Err(RuntimeError::new(unit.msgs[*msg as usize].clone()));
                }
            }
        }
        Ok(ChunkExit::Finished)
    }

    /// Fused echo: strings go straight to the output buffer (the transient
    /// copy the generic path materializes is elided); everything else still
    /// converts through a transient.
    fn echo_fast(&mut self, v: PhpValue, arena: bool) {
        if let PhpValue::Str(s) = &v {
            self.output.extend_from_slice(s.as_bytes());
            self.tally.transients_elided += 1;
        } else {
            let s = v.to_php_string();
            let tv = self.machine.transient_str_static(s.clone(), arena);
            let _ = tv;
            self.output.extend_from_slice(s.as_bytes());
        }
    }
}

/// Compiles and runs `src` on `machine` with default options — the VM
/// counterpart of [`crate::Interp::run`], for tests and small drivers.
///
/// # Errors
///
/// Returns [`RuntimeError`] on parse or evaluation failure.
pub fn run_src(machine: &mut PhpMachine, src: &str) -> Result<Vec<u8>, RuntimeError> {
    let prog = crate::parse(src)?;
    let unit = Arc::new(crate::compile::compile(
        &prog,
        &[],
        None,
        crate::compile::CompileOptions::default(),
    ));
    let mut vm = Vm::new(machine, unit);
    let r = vm.run();
    let out = vm.take_output();
    r.map(|()| out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::parse;

    /// Runs `src` on both engines (VM fused and unfused) and asserts all
    /// three outputs (or errors) agree byte-for-byte.
    fn both(src: &str) -> Result<String, RuntimeError> {
        let mut m = PhpMachine::specialized();
        let tree = {
            let mut i = crate::Interp::new(&mut m);
            let r = i.run(src);
            r.map(|()| String::from_utf8_lossy(i.output()).into_owned())
        };
        for fuse in [false, true] {
            let prog = parse(src).unwrap();
            let unit = Arc::new(compile(&prog, &[], None, CompileOptions { fuse }));
            let mut m2 = PhpMachine::specialized();
            let mut vm = Vm::new(&mut m2, unit);
            let r = vm.run();
            let vm_out = r.map(|()| String::from_utf8_lossy(vm.output()).into_owned());
            match (&tree, &vm_out) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "fuse={fuse} src={src}"),
                (Err(a), Err(b)) => {
                    assert_eq!(a.message, b.message, "fuse={fuse} src={src}")
                }
                (a, b) => panic!("engines disagree (fuse={fuse}): tree={a:?} vm={b:?}"),
            }
        }
        tree
    }

    #[test]
    fn arithmetic_and_echo() {
        assert_eq!(both("$x = 2 + 3 * 4; echo $x;").unwrap(), "14");
    }

    #[test]
    fn string_concat() {
        assert_eq!(
            both("$name = 'World'; echo 'Hello, ' . $name . '!';").unwrap(),
            "Hello, World!"
        );
    }

    #[test]
    fn arrays_and_foreach_order() {
        assert_eq!(
            both(
                "$a = array('b' => 2, 'a' => 1); $a['c'] = 3; \
                 foreach ($a as $k => $v) { echo $k, '=', $v, ';'; }"
            )
            .unwrap(),
            "b=2;a=1;c=3;"
        );
    }

    #[test]
    fn append_and_autovivify() {
        assert_eq!(
            both(
                "$a = []; $a[] = 'x'; $a[] = 'y'; echo count($a), $a[1]; \
                  $b['k'] = 5; echo $b['k'];"
            )
            .unwrap(),
            "2y5"
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            both(
                "function fib($n) { if ($n < 2) { return $n; } \
                 return fib($n - 1) + fib($n - 2); } echo fib(10);"
            )
            .unwrap(),
            "55"
        );
    }

    #[test]
    fn loops_break_continue() {
        assert_eq!(
            both(
                "$s = ''; for ($i = 0; $i < 10; $i++) { \
                 if ($i == 2) { continue; } if ($i == 5) { break; } $s .= $i; } \
                 $n = 3; while ($n > 0) { $s .= 'w'; $n--; } echo $s;"
            )
            .unwrap(),
            "0134www"
        );
    }

    #[test]
    fn globals() {
        assert_eq!(
            both(
                "$config = 'prod'; function env() { global $config; return $config; } \
                 echo env();"
            )
            .unwrap(),
            "prod"
        );
    }

    #[test]
    fn division_by_zero_warns_inline() {
        assert_eq!(
            both("echo 'a'; $x = 1 / 0; echo 'b', $x ? 't' : 'f';").unwrap(),
            "aWarning: Division by zero\nbf"
        );
    }

    #[test]
    fn ternary_and_elvis_short_circuit() {
        assert_eq!(both("echo true ? 'safe' : 1 / 0;").unwrap(), "safe");
        assert_eq!(both("$x = ''; echo $x ?: 'default';").unwrap(), "default");
        assert_eq!(both("$x = 'set'; echo $x ?: 'default';").unwrap(), "set");
    }

    #[test]
    fn and_or_return_bools_and_short_circuit() {
        assert_eq!(
            both(
                "echo (false && 1 / 0) ? 'y' : 'n'; echo (true || 1 / 0) ? 'y' : 'n'; \
                  $v = 3 && 2; echo is_bool($v) ? 'B' : '?';"
            )
            .unwrap(),
            "nyB"
        );
    }

    #[test]
    fn builtins_and_preg() {
        assert_eq!(
            both(
                "echo strtoupper('abc'), '|', substr('abcdef', 1, 3), '|'; \
                 if (preg_match('/[0-9]+/', 'order 42')) { echo 'yes'; } \
                 echo preg_replace('/o/', '0', 'foo');"
            )
            .unwrap(),
            "ABC|bcd|yesf00"
        );
    }

    #[test]
    fn extract_sets_vars() {
        assert_eq!(
            both("$d = array('t' => 'Hi', 'n' => 7); extract($d); echo $t, $n;").unwrap(),
            "Hi7"
        );
    }

    #[test]
    fn nested_function_redefinition() {
        assert_eq!(
            both(
                "function f() { return 1; } echo f(); \
                 if (true) { function f() { return 2; } } echo f();"
            )
            .unwrap(),
            "12"
        );
    }

    #[test]
    fn errors_match_tree_walker() {
        for src in [
            "mystery();",
            "function f($n) { return f($n + 1); } f(0);",
            "foreach (42 as $v) { echo $v; }",
            "$x = 'str'; $x['k'] = 1;",
            "$n = 5; echo $n['k'];",
            "break;",
        ] {
            assert!(both(src).is_err(), "{src}");
        }
    }

    #[test]
    fn main_level_return_stops_execution() {
        assert_eq!(both("echo 'a'; return; echo 'b';").unwrap(), "a");
    }

    #[test]
    fn string_byte_indexing() {
        assert_eq!(both("$s = 'abc'; echo $s[1], $s[9];").unwrap(), "b");
    }

    #[test]
    fn fuel_exhaustion_yields_timeout() {
        let mut m = PhpMachine::baseline();
        m.ctx().set_fuel(Some(50));
        let err = run_src(&mut m, "$s = 0; while (true) { $s = $s + 1; }")
            .expect_err("must run out of fuel");
        assert!(err.is_timeout(), "{err}");
    }

    #[test]
    fn vm_charges_fewer_jit_uops_than_tree() {
        let src = "$s = ''; for ($i = 0; $i < 50; $i++) { $s = $s . 'x' . $i; } echo $s;";
        let jit = |m: &PhpMachine| {
            m.ctx()
                .profiler()
                .category_breakdown()
                .get(&php_runtime::Category::JitCode)
                .copied()
                .unwrap_or(0)
        };
        let mut mt = PhpMachine::specialized();
        let mut i = crate::Interp::new(&mut mt);
        i.run(src).unwrap();
        let tree_jit = jit(&mt);
        let mut mv = PhpMachine::specialized();
        run_src(&mut mv, src).unwrap();
        let vm_jit = jit(&mv);
        assert!(
            vm_jit * 2 < tree_jit,
            "vm jit {vm_jit} not well under tree jit {tree_jit}"
        );
    }

    #[test]
    fn tally_counts_ops_and_pairs() {
        let mut m = PhpMachine::specialized();
        let prog = parse("echo 'a'; echo 'b'; $x = 1 + 2; echo $x;").unwrap();
        let unit = Arc::new(compile(&prog, &[], None, CompileOptions { fuse: true }));
        let mut vm = Vm::new(&mut m, unit);
        vm.run().unwrap();
        let t = vm.tally();
        assert_eq!(t.count(OpKind::EchoConst), 2);
        assert!(t.total > 0);
        assert!(t.fused >= 2);
        assert!(!t.top_ops().is_empty());
        assert!(!t.top_pairs().is_empty());
    }
}
