//! AST for the mini-PHP subset.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `.` string concatenation
    Concat,
    /// `==` loose equality
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `null`
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `$name`
    Var(String),
    /// `$a[expr]`
    Index {
        /// The array expression (usually a variable).
        base: Box<Expr>,
        /// The key expression.
        key: Box<Expr>,
    },
    /// `array(k => v, ...)` / `[v, ...]`
    ArrayLit(Vec<(Option<Expr>, Expr)>),
    /// Function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? a : b` (and the `?:` elvis form with `a` omitted).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when truthy (`None` = elvis: reuse the condition value).
        then: Option<Box<Expr>>,
        /// Value when falsy.
        otherwise: Box<Expr>,
    },
    /// `!expr`
    Not(Box<Expr>),
    /// `-expr`
    Neg(Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `$name`
    Var(String),
    /// `$a[expr]`
    Index {
        /// The array variable name.
        var: String,
        /// Key (None = `$a[] = v` append).
        key: Option<Expr>,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Assignment (`=`, `.=`, `+=` desugared at parse time).
    Assign {
        /// Target.
        target: LValue,
        /// Value expression.
        value: Expr,
    },
    /// `echo expr, expr...;`
    Echo(Vec<Expr>),
    /// `if (...) {...} else {...}`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        otherwise: Vec<Stmt>,
    },
    /// `while (...) {...}`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) {...}`
    For {
        /// Initializer.
        init: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Step.
        step: Box<Stmt>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `foreach ($arr as $k => $v) {...}`
    Foreach {
        /// Array expression.
        array: Expr,
        /// Key variable (optional).
        key_var: Option<String>,
        /// Value variable.
        value_var: String,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Function definition.
    FuncDef(FuncDef),
    /// `return expr;`
    Return(Option<Expr>),
    /// `global $a, $b;`
    Global(Vec<String>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A user function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements (function defs included).
    pub stmts: Vec<Stmt>,
}
