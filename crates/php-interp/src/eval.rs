//! Tree-walking evaluator over [`PhpMachine`].
//!
//! Variables live in *symbol tables* backed by [`PhpArray`] — exactly the
//! structure §4.2 describes ("A symbol table is implemented using a hash
//! map"), so interpreting a script generates genuine hash-map traffic with
//! dynamic key names, plus allocator churn for every string produced.
//! Interpreter dispatch overhead is charged to the `jit_compiled_code`
//! bucket, standing in for HHVM's translated code.

use crate::ast::*;
use crate::builtins;
use crate::facts::{AnalysisFacts, KeyShape};
use crate::memo::{MemoHandle, MemoHit, MemoValue};
use crate::parser::{parse, ParseError};
use php_runtime::array::{ArrayKey, PhpArray};
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use php_runtime::AccessStatic;
use phpaccel_core::{KeyShapeHint, PhpMachine};
use regex_engine::Regex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// What class of failure a [`RuntimeError`] represents. The serving layer's
/// sandbox maps each kind to a different request outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Ordinary evaluation failure (PHP fatal error).
    Fatal,
    /// The request's execution budget — step fuel or µop deadline — ran out.
    Timeout,
}

/// Runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// Message.
    pub message: String,
    /// Failure class.
    pub kind: ErrorKind,
}

impl RuntimeError {
    /// Creates an ordinary (fatal) error.
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
            kind: ErrorKind::Fatal,
        }
    }

    /// Creates a budget-exhaustion error.
    pub fn timeout(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
            kind: ErrorKind::Timeout,
        }
    }

    /// Whether this error is a budget exhaustion rather than a PHP fatal.
    pub fn is_timeout(&self) -> bool {
        self.kind == ErrorKind::Timeout
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "php runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

impl From<ParseError> for RuntimeError {
    fn from(e: ParseError) -> Self {
        RuntimeError::new(e.to_string())
    }
}

/// Control flow result of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(PhpValue),
}

struct Scope {
    table: PhpArray,
    globals: HashSet<String>,
}

/// The interpreter.
pub struct Interp<'m> {
    machine: &'m mut PhpMachine,
    funcs: HashMap<String, Arc<FuncDef>>,
    scopes: Vec<Scope>,
    output: Vec<u8>,
    regex_cache: HashMap<String, Regex>,
    /// Runtime regex compiles performed (regex-cache misses).
    regex_compiles: u64,
    /// Recursion guard.
    depth: usize,
    /// Static-analysis facts for the program being run (see
    /// [`crate::facts`]). `None` = fully dynamic execution.
    facts: Option<Arc<AnalysisFacts>>,
    /// Shared cross-request memo tier (see [`crate::memo`]). `None` = no
    /// memoization; proven-memoizable sites just execute.
    memo: Option<MemoHandle>,
    /// Engine-local `rand` stream state (see [`builtins::RAND_SEED`]).
    rand_state: u64,
}

pub(crate) fn hint_of(shape: KeyShape) -> KeyShapeHint {
    match shape {
        KeyShape::ConstStr => KeyShapeHint::ConstStr,
        KeyShape::IntAppend => KeyShapeHint::IntAppend,
        KeyShape::Unknown => KeyShapeHint::Unknown,
    }
}

/// µops charged to the JIT bucket per interpreted AST node.
const NODE_UOPS: u64 = 3;
/// Maximum call depth (shared with the compiled VM so recursion behaves
/// identically on both engines).
pub(crate) const MAX_DEPTH: usize = 64;

/// The PHP array key a value coerces to (shared by both engines).
pub(crate) fn key_of(v: &PhpValue) -> ArrayKey {
    match v {
        PhpValue::Int(i) => ArrayKey::Int(*i),
        PhpValue::Bool(b) => ArrayKey::Int(*b as i64),
        other => ArrayKey::Str(other.to_php_string()),
    }
}

/// Emits a PHP `E_WARNING`-style diagnostic into an output stream.
pub(crate) fn warn_into(out: &mut Vec<u8>, msg: &str) {
    out.extend_from_slice(b"Warning: ");
    out.extend_from_slice(msg.as_bytes());
    out.push(b'\n');
}

/// Evaluates a non-short-circuit binary operation on already-evaluated
/// operands. One definition shared by the tree-walker and the compiled VM so
/// PHP's numeric promotion, division-by-zero warnings, and concat allocation
/// behavior cannot diverge between engines. Operand type checks are the
/// caller's job (they depend on per-engine fact plumbing).
pub(crate) fn binop_eval(
    machine: &mut PhpMachine,
    out: &mut Vec<u8>,
    op: BinOp,
    l: PhpValue,
    r: PhpValue,
    arena_safe: bool,
) -> Result<PhpValue, RuntimeError> {
    use BinOp::*;
    let numeric = |l: &PhpValue, r: &PhpValue| {
        matches!(l, PhpValue::Float(_)) || matches!(r, PhpValue::Float(_))
    };
    Ok(match op {
        Add => {
            if numeric(&l, &r) {
                PhpValue::Float(l.to_float() + r.to_float())
            } else {
                PhpValue::Int(l.to_int().wrapping_add(r.to_int()))
            }
        }
        Sub => {
            if numeric(&l, &r) {
                PhpValue::Float(l.to_float() - r.to_float())
            } else {
                PhpValue::Int(l.to_int().wrapping_sub(r.to_int()))
            }
        }
        Mul => {
            if numeric(&l, &r) {
                PhpValue::Float(l.to_float() * r.to_float())
            } else {
                PhpValue::Int(l.to_int().wrapping_mul(r.to_int()))
            }
        }
        Div => {
            let d = r.to_float();
            if d == 0.0 {
                // PHP 7 semantics: E_WARNING, expression yields false.
                warn_into(out, "Division by zero");
                return Ok(PhpValue::Bool(false));
            }
            let q = l.to_float() / d;
            if q.fract() == 0.0 && !numeric(&l, &r) {
                PhpValue::Int(q as i64)
            } else {
                PhpValue::Float(q)
            }
        }
        Mod => {
            let d = r.to_int();
            if d == 0 {
                // PHP 7 emits the same warning for `%` with a 0 divisor.
                warn_into(out, "Division by zero");
                return Ok(PhpValue::Bool(false));
            }
            // wrapping_rem: i64::MIN % -1 is 0 in PHP, a Rust overflow.
            PhpValue::Int(l.to_int().wrapping_rem(d))
        }
        Concat => {
            let mut s = l.to_php_string();
            s.push_bytes(r.to_php_string().as_bytes());
            // Concatenation allocates the result string.
            machine.transient_str_static(s, arena_safe)
        }
        Eq => PhpValue::Bool(l.loose_eq(&r)),
        Ne => PhpValue::Bool(!l.loose_eq(&r)),
        Lt => cmp_eval(machine, l, r, |o| o == std::cmp::Ordering::Less),
        Gt => cmp_eval(machine, l, r, |o| o == std::cmp::Ordering::Greater),
        Le => cmp_eval(machine, l, r, |o| o != std::cmp::Ordering::Greater),
        Ge => cmp_eval(machine, l, r, |o| o != std::cmp::Ordering::Less),
        And | Or => unreachable!("handled by short-circuit"),
    })
}

pub(crate) fn cmp_eval(
    machine: &mut PhpMachine,
    l: PhpValue,
    r: PhpValue,
    f: impl Fn(std::cmp::Ordering) -> bool,
) -> PhpValue {
    let ord = match (&l, &r) {
        (PhpValue::Str(a), PhpValue::Str(b)) => machine.strcmp(a, b),
        _ => l
            .to_float()
            .partial_cmp(&r.to_float())
            .unwrap_or(std::cmp::Ordering::Equal),
    };
    PhpValue::Bool(f(ord))
}

/// Reads `base[key]` with PHP coercions: hash lookup on arrays, byte
/// indexing on strings, error otherwise. Shared by both engines.
pub(crate) fn index_read(
    machine: &mut PhpMachine,
    base: PhpValue,
    key: &PhpValue,
    st: AccessStatic,
    hint: KeyShapeHint,
) -> Result<PhpValue, RuntimeError> {
    match base {
        PhpValue::Array(rc) => {
            let k = key_of(key);
            let borrowed = rc.borrow();
            Ok(machine
                .array_get_static(&borrowed, &k, st, hint)
                .unwrap_or(PhpValue::Null))
        }
        PhpValue::Str(s) => {
            let i = key.to_int();
            let b = s.as_bytes();
            if i >= 0 && (i as usize) < b.len() {
                Ok(PhpValue::str(PhpStr::from_bytes(vec![b[i as usize]])))
            } else {
                Ok(PhpValue::str(""))
            }
        }
        other => Err(RuntimeError::new(format!(
            "cannot index {}",
            other.type_name()
        ))),
    }
}

impl<'m> Interp<'m> {
    /// Creates an interpreter over a machine.
    pub fn new(machine: &'m mut PhpMachine) -> Self {
        let table = machine.new_array();
        Interp {
            machine,
            funcs: HashMap::new(),
            scopes: vec![Scope {
                table,
                globals: HashSet::new(),
            }],
            output: Vec::new(),
            regex_cache: HashMap::new(),
            regex_compiles: 0,
            depth: 0,
            facts: None,
            memo: None,
            rand_state: builtins::RAND_SEED,
        }
    }

    /// Attaches static-analysis facts. Facts are keyed by node identity, so
    /// they only take effect when the exact analyzed [`Program`] instance is
    /// run; any other program falls back to fully dynamic execution.
    ///
    /// Attaching also forwards the analysis' static pre-configuration to the
    /// machine (heap free-list pre-seeding from known allocation sizes,
    /// string-engine sieve config preloading when regexes were precompiled)
    /// and books the taint lints into the savings counters. All of it is
    /// work-elision only — program output is unchanged.
    pub fn set_facts(&mut self, facts: Arc<AnalysisFacts>) {
        self.machine.apply_prebuilt(
            facts.alloc_size_hints(),
            facts.precompiled_regex_count() > 0,
        );
        self.machine
            .ctx()
            .profiler()
            .note_taint_lints(facts.taint_lint_count() as u64);
        self.machine
            .ctx()
            .profiler()
            .note_arena_safe_sites(facts.arena_safe_count() as u64);
        self.facts = Some(facts);
    }

    /// Detaches static-analysis facts.
    pub fn clear_facts(&mut self) {
        self.facts = None;
    }

    /// Attaches a shared memo tier. Only sites the attached facts prove
    /// memoizable consult it, so without facts this is inert.
    pub fn set_memo(&mut self, handle: MemoHandle) {
        self.memo = Some(handle);
    }

    /// Detaches the memo tier.
    pub fn clear_memo(&mut self) {
        self.memo = None;
    }

    /// Draws the next value of the engine's deterministic `rand` stream.
    pub(crate) fn next_rand(&mut self) -> i64 {
        builtins::rand_step(&mut self.rand_state)
    }

    /// Pre-registers shared function definitions. Hoisting in
    /// [`Interp::run_program`] keeps an already-registered name instead of
    /// cloning the program's definition, so facts interned over these exact
    /// instances (via `php-analysis`) stay valid inside function bodies.
    pub fn predefine_funcs<I: IntoIterator<Item = Arc<FuncDef>>>(&mut self, defs: I) {
        for def in defs {
            self.funcs.insert(def.name.clone(), def);
        }
    }

    /// The machine.
    pub fn machine(&mut self) -> &mut PhpMachine {
        self.machine
    }

    /// Everything `echo`ed so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Takes the output buffer.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Parses and runs a source string.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on parse or evaluation failure.
    pub fn run(&mut self, src: &str) -> Result<(), RuntimeError> {
        let prog = parse(src)?;
        self.run_program(&prog)
    }

    /// Runs a parsed program.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on evaluation failure.
    pub fn run_program(&mut self, prog: &Program) -> Result<(), RuntimeError> {
        // Hoist function definitions. Pre-registered shared instances (see
        // `predefine_funcs`) win over fresh clones so node-identity facts
        // keep working inside bodies.
        for s in &prog.stmts {
            if let Stmt::FuncDef(f) = s {
                self.funcs
                    .entry(f.name.clone())
                    .or_insert_with(|| Arc::new(f.clone()));
            }
        }
        for s in &prog.stmts {
            if matches!(s, Stmt::FuncDef(_)) {
                continue;
            }
            match self.stmt(s)? {
                Flow::Normal => {}
                Flow::Return(_) => break,
                Flow::Break | Flow::Continue => {
                    return Err(RuntimeError::new("break/continue outside loop"))
                }
            }
        }
        Ok(())
    }

    /// Calls a user-defined function by name (used by workload drivers).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the function is unknown or fails.
    pub fn call_function(
        &mut self,
        name: &str,
        args: Vec<PhpValue>,
    ) -> Result<PhpValue, RuntimeError> {
        let def = self
            .funcs
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::new(format!("undefined function {name}")))?;
        self.invoke(&def, args)
    }

    fn invoke(&mut self, def: &FuncDef, args: Vec<PhpValue>) -> Result<PhpValue, RuntimeError> {
        if self.depth >= MAX_DEPTH {
            return Err(RuntimeError::new("maximum call depth exceeded"));
        }
        self.depth += 1;
        // The frame's symbol table dies when the scope pops — arena-eligible
        // when the region analysis cleared the function.
        let symtab_arena = self
            .facts
            .as_ref()
            .is_some_and(|f| f.symtab_arena_safe(&def.name));
        let table = self.machine.new_array_static(symtab_arena);
        self.scopes.push(Scope {
            table,
            globals: HashSet::new(),
        });
        for (i, p) in def.params.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(PhpValue::Null);
            self.set_var(p, v);
        }
        let mut ret = PhpValue::Null;
        let mut result = Ok(());
        for s in &def.body {
            match self.stmt(s) {
                Ok(Flow::Return(v)) => {
                    ret = v;
                    break;
                }
                Ok(Flow::Normal) => {}
                Ok(Flow::Break | Flow::Continue) => {
                    result = Err(RuntimeError::new("break/continue outside loop"));
                    break;
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        // Function scope ends: its symbol table (a short-lived hash map!)
        // is freed — the pattern the hardware hash table exploits.
        let scope = self.scopes.pop().expect("scope pushed above");
        self.machine.array_free(&scope.table);
        self.depth -= 1;
        result.map(|()| ret)
    }

    /// Runs one proven-memoizable call through the memo tier: replay on a
    /// hit (return value + echoed bytes), execute-and-store on a miss. A
    /// key that fails to build (value too deep) executes normally.
    fn call_memoized(
        &mut self,
        def: &FuncDef,
        vals: Vec<PhpValue>,
        site: &crate::facts::MemoSiteFact,
    ) -> Result<PhpValue, RuntimeError> {
        let handle = self.memo.clone().expect("checked by caller");
        // Dependency values are read straight from the global symbol table,
        // bypassing the (fault-injectable) accelerator path: the key must
        // reflect architecturally true state.
        let globals = &self.scopes[0].table;
        let key = handle.build_key(&site.func, &vals, &site.deps, |dep| {
            globals
                .get(&ArrayKey::from(dep))
                .cloned()
                .unwrap_or(PhpValue::Null)
        });
        let Some(key) = key else {
            return self.invoke(def, vals);
        };
        if let Some(hit) = handle.tier.lookup(&key) {
            self.machine.ctx().profiler().note_memo_hit();
            self.output.extend_from_slice(&hit.output);
            return Ok(hit.value.to_php(self.machine));
        }
        self.machine.ctx().profiler().note_memo_miss();
        let out_mark = self.output.len();
        // Keep cheap handle clones of the arguments: after the call the key
        // is rebuilt from them plus fresh dep reads, and the entry is stored
        // only if nothing shifted. A callee that mutates an argument array —
        // or a dep's array through an alias — is thereby never cached.
        let snapshot = vals.clone();
        let ret = self.invoke(def, vals)?;
        let stable = {
            let globals = &self.scopes[0].table;
            handle
                .build_key(&site.func, &snapshot, &site.deps, |dep| {
                    globals
                        .get(&ArrayKey::from(dep))
                        .cloned()
                        .unwrap_or(PhpValue::Null)
                })
                .is_some_and(|k| k == key)
        };
        if !stable {
            return Ok(ret);
        }
        if let Some(value) = MemoValue::from_php(&ret) {
            let deps = site.deps.iter().map(|d| handle.dep_key(d)).collect();
            handle.tier.store(
                key,
                deps,
                MemoHit {
                    value,
                    output: self.output[out_mark..].to_vec(),
                },
            );
            self.machine.ctx().profiler().note_memo_store();
        }
        Ok(ret)
    }

    /// Purges memo entries depending on global `name` after a write to it.
    fn memo_invalidate_global(&mut self, name: &str) {
        if let Some(handle) = &self.memo {
            let n = handle.invalidate(name);
            if n > 0 {
                self.machine.ctx().profiler().note_memo_invalidations(n);
            }
        }
    }

    fn scope_index_for(&self, name: &str) -> usize {
        let cur = self.scopes.len() - 1;
        if cur > 0 && self.scopes[cur].globals.contains(name) {
            0
        } else {
            cur
        }
    }

    fn get_var(&mut self, name: &str) -> PhpValue {
        self.get_var_static(name, AccessStatic::default(), KeyShapeHint::Unknown)
    }

    fn get_var_static(&mut self, name: &str, st: AccessStatic, hint: KeyShapeHint) -> PhpValue {
        let idx = self.scope_index_for(name);
        let table = std::mem::replace(&mut self.scopes[idx].table, PhpArray::new());
        let v = self
            .machine
            .array_get_static(&table, &ArrayKey::from(name), st, hint)
            .unwrap_or(PhpValue::Null);
        self.scopes[idx].table = table;
        v
    }

    fn set_var(&mut self, name: &str, value: PhpValue) {
        self.set_var_static(name, value, AccessStatic::default(), KeyShapeHint::Unknown);
    }

    fn set_var_static(
        &mut self,
        name: &str,
        value: PhpValue,
        st: AccessStatic,
        hint: KeyShapeHint,
    ) {
        let idx = self.scope_index_for(name);
        let mut table = std::mem::replace(&mut self.scopes[idx].table, PhpArray::new());
        self.machine
            .array_set_static(&mut table, ArrayKey::from(name), value, st, hint);
        self.scopes[idx].table = table;
        // A global write drops memo entries fingerprinted on this name.
        // (Soundness never depends on this — dep *values* are in the key —
        // but it keeps the shared tier free of dead generations.)
        if idx == 0 {
            self.memo_invalidate_global(name);
        }
    }

    fn key_of(v: &PhpValue) -> ArrayKey {
        key_of(v)
    }

    /// Charges one interpreter step against the armed execution budget.
    fn fuel_step(&mut self) -> Result<(), RuntimeError> {
        if self.machine.ctx().consume_fuel(1) {
            Ok(())
        } else {
            Err(RuntimeError::timeout("maximum execution budget exceeded"))
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Flow, RuntimeError> {
        self.fuel_step()?;
        self.machine.ctx().charge_jit(NODE_UOPS * 2);
        match s {
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, value } => {
                let v = self.expr(value)?;
                let (elide, shape, site_known) = match &self.facts {
                    Some(f) => (
                        f.rc_elide_store(s),
                        f.key_shape_stmt(s),
                        f.stmt_id(s).is_some(),
                    ),
                    None => (false, KeyShape::Unknown, false),
                };
                let st = AccessStatic {
                    elide_rc: elide,
                    skip_type_check: false,
                };
                match target {
                    LValue::Var(name) => {
                        // Symbol-table keys are literal variable names, so a
                        // known site always carries a constant-key hint.
                        let hint = if site_known {
                            KeyShapeHint::ConstStr
                        } else {
                            KeyShapeHint::Unknown
                        };
                        self.set_var_static(name, v, st, hint);
                    }
                    LValue::Index { var, key } => {
                        let arr_val = self.get_var(var);
                        let rc = match arr_val {
                            PhpValue::Array(rc) => rc,
                            PhpValue::Null => {
                                let arena =
                                    self.facts.as_ref().is_some_and(|f| f.arena_safe_stmt(s));
                                let a = self.machine.new_array_static(arena);
                                let v2 = PhpValue::array(a);
                                self.set_var(var, v2.clone());
                                match v2 {
                                    PhpValue::Array(rc) => rc,
                                    _ => unreachable!(),
                                }
                            }
                            other => {
                                return Err(RuntimeError::new(format!(
                                    "cannot index into {}",
                                    other.type_name()
                                )))
                            }
                        };
                        match key {
                            Some(kexpr) => {
                                let kv = self.expr(kexpr)?;
                                let k = Self::key_of(&kv);
                                self.machine.array_set_static(
                                    &mut rc.borrow_mut(),
                                    k,
                                    v,
                                    st,
                                    hint_of(shape),
                                );
                            }
                            None => {
                                self.machine.array_push_static(
                                    &mut rc.borrow_mut(),
                                    v,
                                    st,
                                    shape == KeyShape::IntAppend,
                                );
                            }
                        }
                        // An in-place element write mutates the global's
                        // value without passing through `set_var`: trigger
                        // the fingerprint invalidation here too.
                        if self.scope_index_for(var) == 0 {
                            self.memo_invalidate_global(var);
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Echo(parts) => {
                for p in parts {
                    let v = self.expr(p)?;
                    let s = v.to_php_string();
                    // echo materializes output bytes: allocator churn.
                    let arena = self.facts.as_ref().is_some_and(|f| f.arena_safe_expr(p));
                    let tv = self.machine.transient_str_static(s.clone(), arena);
                    let _ = tv;
                    self.output.extend_from_slice(s.as_bytes());
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                let c = self.expr(cond)?.to_bool();
                let body = if c { then } else { otherwise };
                for s in body {
                    match self.stmt(s)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body } => {
                let mut guard = 0u64;
                while self.expr(cond)?.to_bool() {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(RuntimeError::new("while loop exceeded iteration cap"));
                    }
                    match self.run_loop_body(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init)?;
                let mut guard = 0u64;
                while self.expr(cond)?.to_bool() {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(RuntimeError::new("for loop exceeded iteration cap"));
                    }
                    match self.run_loop_body(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    self.stmt(step)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Foreach {
                array,
                key_var,
                value_var,
                body,
            } => {
                let arr = self.expr(array)?;
                let PhpValue::Array(rc) = arr else {
                    return Err(RuntimeError::new("foreach over non-array"));
                };
                let pairs = {
                    let borrowed = rc.borrow();
                    self.machine.foreach(&borrowed)
                };
                let (elide, site_known) = match &self.facts {
                    Some(f) => (f.rc_elide_store(s), f.stmt_id(s).is_some()),
                    None => (false, false),
                };
                let st = AccessStatic {
                    elide_rc: elide,
                    skip_type_check: false,
                };
                let hint = if site_known {
                    KeyShapeHint::ConstStr
                } else {
                    KeyShapeHint::Unknown
                };
                for (k, v) in pairs {
                    if let Some(kv) = key_var {
                        let key_value = match &k {
                            ArrayKey::Int(i) => PhpValue::Int(*i),
                            ArrayKey::Str(s) => PhpValue::str(s.clone()),
                        };
                        self.set_var_static(kv, key_value, st, hint);
                    }
                    self.set_var_static(value_var, v, st, hint);
                    match self.run_loop_body(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::FuncDef(f) => {
                self.funcs.insert(f.name.clone(), Arc::new(f.clone()));
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.expr(e)?,
                    None => PhpValue::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Global(names) => {
                let cur = self.scopes.len() - 1;
                for n in names {
                    self.scopes[cur].globals.insert(n.clone());
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn run_loop_body(&mut self, body: &[Stmt]) -> Result<Flow, RuntimeError> {
        for s in body {
            match self.stmt(s)? {
                Flow::Normal => {}
                Flow::Continue => return Ok(Flow::Continue),
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn expr(&mut self, e: &Expr) -> Result<PhpValue, RuntimeError> {
        self.fuel_step()?;
        self.machine.ctx().charge_jit(NODE_UOPS);
        match e {
            Expr::Null => Ok(PhpValue::Null),
            Expr::Bool(b) => Ok(PhpValue::Bool(*b)),
            Expr::Int(i) => Ok(PhpValue::Int(*i)),
            Expr::Float(f) => Ok(PhpValue::Float(*f)),
            Expr::Str(s) => Ok(PhpValue::str(s.as_str())),
            Expr::Var(name) => {
                let (elide, site_known) = match &self.facts {
                    Some(f) => (f.rc_elide_read(e), f.expr_id(e).is_some()),
                    None => (false, false),
                };
                let st = AccessStatic {
                    elide_rc: elide,
                    skip_type_check: false,
                };
                let hint = if site_known {
                    KeyShapeHint::ConstStr
                } else {
                    KeyShapeHint::Unknown
                };
                Ok(self.get_var_static(name, st, hint))
            }
            Expr::Index { base, key } => {
                let b = self.expr(base)?;
                let kv = self.expr(key)?;
                let (elide, shape) = match &self.facts {
                    Some(f) => (f.rc_elide_read(e), f.key_shape_expr(e)),
                    None => (false, KeyShape::Unknown),
                };
                let st = AccessStatic {
                    elide_rc: elide,
                    skip_type_check: false,
                };
                index_read(self.machine, b, &kv, st, hint_of(shape))
            }
            Expr::ArrayLit(items) => {
                let arena = self.facts.as_ref().is_some_and(|f| f.arena_safe_expr(e));
                let mut a = self.machine.new_array_static(arena);
                for (k, vexpr) in items {
                    let v = self.expr(vexpr)?;
                    match k {
                        Some(kexpr) => {
                            let kv = self.expr(kexpr)?;
                            self.machine.array_set(&mut a, Self::key_of(&kv), v);
                        }
                        None => {
                            self.machine.array_push(&mut a, v);
                        }
                    }
                }
                Ok(PhpValue::array(a))
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a)?);
                }
                if let Some(def) = self.funcs.get(name).cloned() {
                    // A summarized site: the analysis kept facts alive across
                    // this call boundary instead of dropping to ⊤.
                    if self.facts.as_ref().is_some_and(|f| f.call_summarized(e)) {
                        self.machine.ctx().profiler().note_summary_applied();
                    }
                    // A proven-memoizable site with a tier attached: key on
                    // (callee, args, read-set values) and replay on a hit.
                    let site = self
                        .memo
                        .is_some()
                        .then(|| self.facts.as_ref().and_then(|f| f.memo_site(e)).cloned())
                        .flatten();
                    if let Some(site) = site {
                        return self.call_memoized(&def, vals, &site);
                    }
                    return self.invoke(&def, vals);
                }
                builtins::call(self, name, vals, Some(e))
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let c = self.expr(cond)?;
                if c.to_bool() {
                    match then {
                        Some(t) => self.expr(t),
                        None => Ok(c), // elvis
                    }
                } else {
                    self.expr(otherwise)
                }
            }
            Expr::Not(inner) => Ok(PhpValue::Bool(!self.expr(inner)?.to_bool())),
            Expr::Neg(inner) => {
                let v = self.expr(inner)?;
                Ok(match v {
                    PhpValue::Float(f) => PhpValue::Float(-f),
                    other => PhpValue::Int(-other.to_int()),
                })
            }
            Expr::Bin { op, lhs, rhs } => {
                // Short-circuit logical ops.
                if *op == BinOp::And {
                    let l = self.expr(lhs)?.to_bool();
                    return Ok(PhpValue::Bool(l && self.expr(rhs)?.to_bool()));
                }
                if *op == BinOp::Or {
                    let l = self.expr(lhs)?.to_bool();
                    return Ok(PhpValue::Bool(l || self.expr(rhs)?.to_bool()));
                }
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                // Operand types proven by analysis skip the dynamic check —
                // the checked-load elision the facts table exists for.
                let (skip_l, skip_r) = self
                    .facts
                    .as_ref()
                    .map(|f| f.bin_typed(e))
                    .unwrap_or((false, false));
                self.machine.ctx().type_check_elidable(&l, skip_l);
                self.machine.ctx().type_check_elidable(&r, skip_r);
                // `binop` never sees the AST node, so the concat site's
                // arena verdict is resolved here and passed down.
                let arena = self.facts.as_ref().is_some_and(|f| f.arena_safe_expr(e));
                Ok(self.binop(*op, l, r, arena)?)
            }
        }
    }

    fn binop(
        &mut self,
        op: BinOp,
        l: PhpValue,
        r: PhpValue,
        arena_safe: bool,
    ) -> Result<PhpValue, RuntimeError> {
        binop_eval(self.machine, &mut self.output, op, l, r, arena_safe)
    }

    /// Compiles (and caches) a `/pattern/`-delimited preg pattern,
    /// returning a clone that shares nothing mutable with the cache.
    pub(crate) fn compile_regex(&mut self, pattern: &str) -> Result<Regex, RuntimeError> {
        if !self.regex_cache.contains_key(pattern) {
            let inner = strip_delimiters(pattern)
                .ok_or_else(|| RuntimeError::new(format!("bad preg pattern {pattern:?}")))?;
            let re =
                Regex::new(inner).map_err(|e| RuntimeError::new(format!("regex error: {e}")))?;
            self.regex_compiles += 1;
            self.regex_cache.insert(pattern.to_owned(), re);
        }
        Ok(self.regex_cache[pattern].clone())
    }

    /// The compiled regex for a `preg_*` pattern argument: the analysis-time
    /// handle recorded for this call site when one exists (counted as an
    /// avoided compile), otherwise a runtime compile through the per-request
    /// cache.
    pub(crate) fn regex_for(
        &mut self,
        site: Option<&Expr>,
        pattern: &str,
    ) -> Result<Regex, RuntimeError> {
        if let (Some(site), Some(f)) = (site, self.facts.as_ref()) {
            if let Some(re) = f.precompiled_regex(site) {
                let re = re.clone();
                self.machine.ctx().profiler().note_regex_compile_avoided();
                return Ok(re);
            }
        }
        self.compile_regex(pattern)
    }

    /// How many runtime regex compiles this interpreter performed (cache
    /// misses in [`Interp::compile_regex`]; analysis-precompiled patterns
    /// never count).
    pub fn regex_compile_count(&self) -> u64 {
        self.regex_compiles
    }

    /// Sets a variable in the current scope (used by builtins like
    /// `extract`).
    pub fn set_var_public(&mut self, name: &str, value: PhpValue) {
        self.set_var(name, value);
    }
}

/// Strips PCRE delimiters (`/.../mods`); returns the inner pattern.
///
/// Public so `php-analysis` can compile constant patterns at analysis time
/// through the exact same path the interpreter uses at runtime.
pub fn strip_delimiters(p: &str) -> Option<&str> {
    let b = p.as_bytes();
    let delim = *b.first()?;
    if delim.is_ascii_alphanumeric() {
        return None;
    }
    let close = p.rfind(delim as char)?;
    if close == 0 {
        return None;
    }
    Some(&p[1..close])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> (String, PhpMachine) {
        let mut m = PhpMachine::specialized();
        let out = {
            let mut i = Interp::new(&mut m);
            i.run(src).unwrap();
            String::from_utf8_lossy(i.output()).into_owned()
        };
        (out, m)
    }

    #[test]
    fn arithmetic_and_echo() {
        let (out, _) = run_src("$x = 2 + 3 * 4; echo $x;");
        assert_eq!(out, "14");
    }

    #[test]
    fn string_concat_and_interp_free_quotes() {
        let (out, _) = run_src("$name = 'World'; echo 'Hello, ' . $name . '!';");
        assert_eq!(out, "Hello, World!");
    }

    #[test]
    fn arrays_and_foreach_order() {
        let (out, _) = run_src(
            "$a = array('b' => 2, 'a' => 1); $a['c'] = 3; \
             foreach ($a as $k => $v) { echo $k, '=', $v, ';'; }",
        );
        assert_eq!(out, "b=2;a=1;c=3;");
    }

    #[test]
    fn append_and_count() {
        let (out, _) = run_src("$a = []; $a[] = 'x'; $a[] = 'y'; echo count($a), $a[1];");
        assert_eq!(out, "2y");
    }

    #[test]
    fn functions_and_recursion() {
        let (out, _) = run_src(
            "function fib($n) { if ($n < 2) { return $n; } return fib($n - 1) + fib($n - 2); } \
             echo fib(10);",
        );
        assert_eq!(out, "55");
    }

    #[test]
    fn while_and_for_loops() {
        let (out, _) = run_src(
            "$s = 0; for ($i = 1; $i <= 5; $i++) { $s += $i; } \
             $n = 3; while ($n > 0) { $s += 100; $n--; } echo $s;",
        );
        assert_eq!(out, "315");
    }

    #[test]
    fn break_continue() {
        let (out, _) = run_src(
            "$s = ''; for ($i = 0; $i < 10; $i++) { \
               if ($i == 2) { continue; } if ($i == 5) { break; } $s .= $i; } echo $s;",
        );
        assert_eq!(out, "0134");
    }

    #[test]
    fn globals() {
        let (out, _) = run_src(
            "$config = 'prod'; function env() { global $config; return $config; } echo env();",
        );
        assert_eq!(out, "prod");
    }

    #[test]
    fn builtin_string_functions() {
        let (out, _) = run_src(
            "echo strtoupper('abc'), '|', strlen('hello'), '|', trim('  x  '), '|', \
             str_replace('o', '0', 'foo'), '|', substr('abcdef', 1, 3);",
        );
        assert_eq!(out, "ABC|5|x|f00|bcd");
    }

    #[test]
    fn preg_functions() {
        let (out, _) = run_src(
            "if (preg_match('/[0-9]+/', 'order 42')) { echo 'yes'; } \
             echo preg_replace('/o/', '0', 'foo boo');",
        );
        assert_eq!(out, "yesf00 b00");
    }

    #[test]
    fn htmlspecialchars_builtin() {
        let (out, _) = run_src("echo htmlspecialchars('<a>&</a>');");
        assert_eq!(out, "&lt;a&gt;&amp;&lt;/a&gt;");
    }

    #[test]
    fn implode_explode() {
        let (out, _) =
            run_src("$parts = explode(',', 'a,b,c'); echo count($parts), implode('-', $parts);");
        assert_eq!(out, "3a-b-c");
    }

    #[test]
    fn extract_builtin() {
        let (out, _) = run_src(
            "$data = array('title' => 'Hi', 'views' => 7); extract($data); echo $title, $views;",
        );
        assert_eq!(out, "Hi7");
    }

    #[test]
    fn interpreting_charges_jit_and_hash_categories() {
        let (_, m) = run_src("$a = ['k' => 1]; foreach ($a as $v) { echo $v; }");
        let cats = m.ctx().profiler().category_breakdown();
        assert!(cats[&php_runtime::Category::JitCode] > 0);
        assert!(cats[&php_runtime::Category::HashMap] > 0);
        // Variable accesses went through the hardware hash table.
        assert!(m.core().htable.stats().sets > 0);
    }

    #[test]
    fn baseline_and_specialized_agree_on_output() {
        let src = r#"
            function render($post) {
                $out = '<h1>' . htmlspecialchars($post['title']) . '</h1>';
                foreach ($post['tags'] as $tag) {
                    $out .= '<span>' . strtolower($tag) . '</span>';
                }
                return $out;
            }
            $post = array('title' => 'A <b>day</b>', 'tags' => array('News', 'PHP'));
            echo render($post);
        "#;
        let run_in = |mut m: PhpMachine| {
            let mut i = Interp::new(&mut m);
            i.run(src).unwrap();
            String::from_utf8_lossy(i.output()).into_owned()
        };
        let b = run_in(PhpMachine::baseline());
        let s = run_in(PhpMachine::specialized());
        assert_eq!(b, s);
        assert!(b.contains("&lt;b&gt;"));
        assert!(b.contains("<span>news</span>"));
    }

    #[test]
    fn division_by_zero_warns_and_yields_false() {
        // PHP 7: `1 / 0` raises E_WARNING and the expression evaluates to
        // false — it is not a fatal error.
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        i.run("$x = 1 / 0; echo is_bool($x) && !$x ? 'F' : '?';")
            .unwrap();
        let out = String::from_utf8(i.take_output()).unwrap();
        assert!(out.contains("Warning: Division by zero"), "{out}");
        assert!(out.ends_with('F'), "{out}");
    }

    #[test]
    fn modulo_by_zero_warns_and_yields_false() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        i.run("$x = 7 % 0; echo is_bool($x) && !$x ? 'F' : '?';")
            .unwrap();
        let out = String::from_utf8(i.take_output()).unwrap();
        assert!(out.contains("Warning: Division by zero"), "{out}");
        assert!(out.ends_with('F'), "{out}");
    }

    #[test]
    fn modulo_int_min_by_negative_one_is_zero() {
        // i64::MIN % -1 overflows in Rust; PHP yields 0.
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        i.run("$m = -9223372036854775807 - 1; echo $m % (0 - 1);")
            .unwrap();
        assert_eq!(i.output(), b"0");
    }

    #[test]
    fn undefined_function_errors() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        assert!(i.run("mystery();").is_err());
    }

    #[test]
    fn recursion_depth_capped() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        assert!(i.run("function f($n) { return f($n + 1); } f(0);").is_err());
    }

    #[test]
    fn fuel_exhaustion_yields_timeout_error() {
        let mut m = PhpMachine::baseline();
        m.ctx().set_fuel(Some(50));
        let mut i = Interp::new(&mut m);
        let err = i
            .run("$s = 0; while (true) { $s = $s + 1; }")
            .expect_err("must run out of fuel");
        assert!(err.is_timeout(), "{err}");
        assert_eq!(err.kind, ErrorKind::Timeout);
    }

    #[test]
    fn uop_deadline_yields_timeout_error() {
        let mut m = PhpMachine::baseline();
        m.ctx().set_uop_deadline(Some(2_000));
        let mut i = Interp::new(&mut m);
        let err = i
            .run("$s = ''; while (true) { $s = $s . 'x'; }")
            .expect_err("must hit the deadline");
        assert!(err.is_timeout(), "{err}");
    }

    #[test]
    fn unmetered_run_is_unaffected() {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        i.run("$s = 0; for ($i = 0; $i < 100; $i++) { $s += $i; } echo $s;")
            .unwrap();
        assert_eq!(i.output(), b"4950");
    }

    #[test]
    fn fatal_errors_are_not_timeouts() {
        let err = RuntimeError::new("boom");
        assert!(!err.is_timeout());
        assert_eq!(err.kind, ErrorKind::Fatal);
    }
}

#[cfg(test)]
mod ternary_tests {
    use super::*;

    fn eval(src: &str) -> String {
        let mut m = PhpMachine::baseline();
        let mut i = Interp::new(&mut m);
        i.run(src).unwrap();
        String::from_utf8_lossy(i.output()).into_owned()
    }

    #[test]
    fn ternary_selects_branch() {
        assert_eq!(eval("echo 1 < 2 ? 'yes' : 'no';"), "yes");
        assert_eq!(eval("echo 2 < 1 ? 'yes' : 'no';"), "no");
    }

    #[test]
    fn ternary_nests_right_associative() {
        assert_eq!(
            eval("$n = 5; echo $n < 3 ? 'low' : ($n < 7 ? 'mid' : 'high');"),
            "mid"
        );
    }

    #[test]
    fn elvis_operator() {
        assert_eq!(eval("$x = ''; echo $x ?: 'default';"), "default");
        assert_eq!(eval("$x = 'set'; echo $x ?: 'default';"), "set");
    }

    #[test]
    fn ternary_in_assignment_and_call() {
        assert_eq!(
            eval("$t = strlen('abc') == 3 ? strtoupper('ok') : 'bad'; echo $t;"),
            "OK"
        );
    }

    #[test]
    fn ternary_short_circuits() {
        // The untaken branch must not execute (division by zero would emit a
        // warning into the output).
        assert_eq!(eval("echo true ? 'safe' : 1 / 0;"), "safe");
    }
}
