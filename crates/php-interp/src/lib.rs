//! # php-interp
//!
//! A mini-PHP interpreter over [`phpaccel_core::PhpMachine`]. Scripts —
//! templates, request handlers — run with PHP semantics while every
//! variable access, string function, allocation, and regexp call flows
//! through the instrumented runtime (and, in specialized mode, through the
//! paper's accelerators). Symbol tables are real [`php_runtime::PhpArray`]
//! hash maps, reproducing §4.2's dynamic-key symbol-table traffic.
//!
//! ```
//! use php_interp::Interp;
//! use phpaccel_core::PhpMachine;
//!
//! let mut machine = PhpMachine::specialized();
//! let mut interp = Interp::new(&mut machine);
//! interp.run("$who = 'world'; echo 'hello ' . $who;")?;
//! assert_eq!(interp.output(), b"hello world");
//! # Ok::<(), php_interp::RuntimeError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod eval;
pub mod facts;
pub mod lexer;
pub mod memo;
pub mod parser;
pub mod vm;

pub use ast::{BinOp, Expr, FuncDef, Program, Stmt};
pub use builtins::NAMES as BUILTIN_NAMES;
pub use compile::{compile, CompileOptions, CompiledFunc, CompiledUnit, MemoSiteInfo, Op, OpKind};
pub use eval::{strip_delimiters, ErrorKind, Interp, RuntimeError};
pub use facts::{AnalysisFacts, KeyShape, MemoSiteFact, NodeId};
pub use memo::{MemoHandle, MemoHit, MemoTier, MemoValue, SimpleMemo};
pub use parser::{parse, ParseError};
pub use vm::{OpcodeTally, Vm};
