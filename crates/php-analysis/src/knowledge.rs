//! What the analyses know about the interpreter's builtin functions:
//! which names are builtins at all, which return a statically known type,
//! and which consume their arguments transiently (so an argument's refcount
//! increment/decrement pair is elidable).
//!
//! This table mirrors `php_interp::builtins` — a name missing here is
//! treated as a user function, which is always the conservative direction.

use crate::types::Ty;

/// All builtin names the interpreter dispatches on.
const BUILTINS: &[&str] = &[
    "strlen",
    "strtolower",
    "strtoupper",
    "ucfirst",
    "ucwords",
    "lcfirst",
    "trim",
    "strpos",
    "str_replace",
    "substr",
    "str_repeat",
    "sprintf",
    "htmlspecialchars",
    "strip_tags",
    "str_word_count",
    "nl2br",
    "strcmp",
    "implode",
    "join",
    "explode",
    "count",
    "array_keys",
    "array_values",
    "in_array",
    "array_key_exists",
    "isset_key",
    "unset_key",
    "extract",
    "intval",
    "floatval",
    "strval",
    "abs",
    "max",
    "min",
    "preg_match",
    "preg_replace",
    "is_string",
    "is_int",
    "is_integer",
    "is_long",
    "is_float",
    "is_double",
    "is_bool",
    "is_array",
    "is_null",
    "is_numeric",
    "rand",
    "time",
];

/// Whether `name` is an interpreter builtin (anything else is a user call).
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}

/// The statically known return type of a builtin, if any.
pub fn builtin_ret_ty(name: &str) -> Option<Ty> {
    Some(match name {
        "strlen" | "str_word_count" | "strcmp" | "intval" | "preg_match" | "extract" | "count"
        | "rand" | "time" => Ty::Int,
        "strtolower" | "strtoupper" | "ucfirst" | "ucwords" | "lcfirst" | "trim"
        | "str_replace" | "substr" | "str_repeat" | "sprintf" | "htmlspecialchars"
        | "strip_tags" | "nl2br" | "implode" | "join" | "strval" | "preg_replace" => Ty::Str,
        "explode" | "array_keys" | "array_values" => Ty::Arr,
        "in_array" | "array_key_exists" | "isset_key" | "unset_key" | "is_string" | "is_int"
        | "is_integer" | "is_long" | "is_float" | "is_double" | "is_bool" | "is_array"
        | "is_null" | "is_numeric" => Ty::Bool,
        "floatval" => Ty::Float,
        // strpos: Int | false. abs/max/min: Int | Float (max/min return an
        // argument unchanged, so anything).
        _ => return None,
    })
}

/// Whether a builtin only *reads* its arguments for the duration of the
/// call — the argument value never outlives it, so the inc/dec pair charged
/// for passing it is elidable. `max`/`min` return an argument itself and
/// `extract` rebinds the whole scope, so they are excluded.
pub fn consumes_args_transiently(name: &str) -> bool {
    !matches!(name, "max" | "min" | "extract") && is_builtin(name)
}

/// Variable names the hosting server binds from the incoming request before
/// the script runs (see `workloads::php_corpus::bind_request_vars` and PHP's
/// superglobals). Reads of these in `<main>` are the taint *sources* of the
/// Yama-style taint analysis ([`crate::taint`]).
pub const REQUEST_SOURCES: &[&str] = &[
    "title", "tags", "meta", "query", "request", "input", "_GET", "_POST", "_REQUEST", "_COOKIE",
    "_SERVER",
];

/// Whether `name` is treated as a request-input source variable in `<main>`.
pub fn is_request_source(name: &str) -> bool {
    REQUEST_SOURCES.contains(&name)
}

/// Builtins whose return value is safe regardless of argument taint —
/// either they encode/strip dangerous bytes (`htmlspecialchars`,
/// `strip_tags`) or they reduce to a number/boolean that carries no
/// attacker-controlled bytes.
pub fn builtin_sanitizes(name: &str) -> bool {
    matches!(
        name,
        "htmlspecialchars"
            | "strip_tags"
            | "intval"
            | "floatval"
            | "strlen"
            | "str_word_count"
            | "strcmp"
            | "strpos"
            | "count"
            | "abs"
            | "in_array"
            | "array_key_exists"
            | "isset_key"
            | "unset_key"
            | "preg_match"
            | "rand"
            | "time"
            | "is_string"
            | "is_int"
            | "is_integer"
            | "is_long"
            | "is_float"
            | "is_double"
            | "is_bool"
            | "is_array"
            | "is_null"
            | "is_numeric"
    )
}

/// Builtins whose result depends on hidden per-request state (the PRNG
/// stream, the clock) rather than on their arguments alone. One call makes
/// the enclosing function — and everything that calls it — nondeterministic:
/// replaying a cached result would freeze a draw that should differ.
pub fn builtin_nondeterministic(name: &str) -> bool {
    matches!(name, "rand" | "time")
}

/// The type an `is_*` guard tests for, if `name` is such a predicate.
pub fn guard_ty(name: &str) -> Option<Ty> {
    Some(match name {
        "is_string" => Ty::Str,
        "is_int" | "is_integer" | "is_long" => Ty::Int,
        "is_float" | "is_double" => Ty::Float,
        "is_bool" => Ty::Bool,
        "is_array" => Ty::Arr,
        "is_null" => Ty::Null,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_functions_are_not_builtins() {
        assert!(is_builtin("strlen"));
        assert!(!is_builtin("render_header"));
    }

    #[test]
    fn escape_exclusions() {
        assert!(consumes_args_transiently("strlen"));
        assert!(
            !consumes_args_transiently("max"),
            "max returns its argument"
        );
        assert!(!consumes_args_transiently("extract"));
        assert!(!consumes_args_transiently("some_user_fn"));
    }

    #[test]
    fn guard_types() {
        assert_eq!(guard_ty("is_string"), Some(Ty::Str));
        assert_eq!(guard_ty("is_numeric"), None, "numeric is not a single type");
    }

    /// The table must mirror the interpreter's dispatch exactly: a builtin
    /// missing here would be analyzed as a user function (losing precision
    /// and — worse — treating its return as tainted-by-default), while a
    /// stale extra name would mis-type calls that actually hit user code.
    #[test]
    fn builtin_table_matches_interpreter_dispatch() {
        use std::collections::BTreeSet;
        let ours: BTreeSet<&str> = BUILTINS.iter().copied().collect();
        let theirs: BTreeSet<&str> = php_interp::BUILTIN_NAMES.iter().copied().collect();
        let missing: Vec<_> = theirs.difference(&ours).collect();
        let stale: Vec<_> = ours.difference(&theirs).collect();
        assert!(
            missing.is_empty(),
            "builtins unknown to analysis: {missing:?}"
        );
        assert!(stale.is_empty(), "names no longer dispatched: {stale:?}");
    }

    /// Every sanitizer and every typed return must name a real builtin.
    #[test]
    fn derived_tables_only_name_builtins() {
        for name in BUILTINS {
            // Exercise the derived tables; unknown names must answer None/false.
            let _ = builtin_ret_ty(name);
            let _ = builtin_sanitizes(name);
        }
        assert_eq!(builtin_ret_ty("not_a_builtin"), None);
        assert!(!builtin_sanitizes("not_a_builtin"));
        assert!(!is_request_source("not_a_source"));
        assert!(is_request_source("title"));
    }
}
