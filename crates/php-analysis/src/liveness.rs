//! Backward live-variable analysis, used by the dead-store lint.

use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::solver::{self, Direction, Lattice, NO_WIDENING};
use php_interp::ast::{Expr, LValue, Stmt};
use std::collections::BTreeSet;

/// The set of variables live at a program point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveSet(pub BTreeSet<String>);

impl Lattice for LiveSet {
    fn bottom() -> Self {
        Self::default()
    }
    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

/// Variables `item` reads.
pub fn item_uses(item: &Item<'_>) -> BTreeSet<String> {
    let mut uses = BTreeSet::new();
    for e in item_exprs(item) {
        walk_exprs(e, &mut |x| {
            if let Expr::Var(n) = x {
                uses.insert(n.clone());
            }
        });
    }
    // `$a[k] = v` reads (and modifies) the array held in `$a`.
    if let Item::Stmt(Stmt::Assign {
        target: LValue::Index { var, .. },
        ..
    }) = item
    {
        uses.insert(var.clone());
    }
    uses
}

/// Variables `item` (re)binds.
pub fn item_defs(item: &Item<'_>) -> BTreeSet<String> {
    let mut defs = BTreeSet::new();
    match item {
        Item::Stmt(Stmt::Assign {
            target: LValue::Var(name),
            ..
        }) => {
            defs.insert(name.clone());
        }
        Item::ForeachBind(Stmt::Foreach {
            key_var, value_var, ..
        }) => {
            if let Some(k) = key_var {
                defs.insert(k.clone());
            }
            defs.insert(value_var.clone());
        }
        _ => {}
    }
    defs
}

/// Transfers `live` backward across one item: `live = (live \ defs) ∪ uses`.
pub fn apply_item_backward(item: &Item<'_>, live: &mut LiveSet) {
    for d in item_defs(item) {
        live.0.remove(&d);
    }
    live.0.extend(item_uses(item));
}

/// Every variable name the scope mentions (used for the `<main>` exit
/// boundary, where all variables outlive the script body).
fn all_vars(scope: &ScopeCfg<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for block in &scope.cfg.blocks {
        for item in &block.items {
            names.extend(item_uses(item));
            names.extend(item_defs(item));
        }
    }
    names
}

/// Solves liveness for one scope; returns the live set at the *exit* of
/// every block.
///
/// Boundary: in a function, only `global`-declared variables are live at
/// the exit (locals die at return); in `<main>`, every variable is — script
/// globals persist for the whole request, so a trailing store is not dead.
pub fn solve_liveness(scope: &ScopeCfg<'_>) -> Vec<LiveSet> {
    let boundary = if scope.is_main {
        LiveSet(all_vars(scope))
    } else {
        LiveSet(scope.globals.clone())
    };
    let succs = scope.cfg.succ_lists();
    solver::solve(
        &succs,
        &[scope.cfg.exit],
        &boundary,
        Direction::Backward,
        &mut |b, out| {
            let mut live = out.clone();
            for item in scope.cfg.blocks[b].items.iter().rev() {
                apply_item_backward(item, &mut live);
            }
            live
        },
        NO_WIDENING,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use php_interp::parse;

    #[test]
    fn overwritten_store_is_not_live() {
        let prog = parse("function f($a) { $x = $a; $x = 2; return $x; }").unwrap();
        let scopes = lower_program(&prog);
        let f = scopes.iter().find(|s| s.name == "f").unwrap();
        let sol = solve_liveness(f);
        // Walk the entry block backward to the point after `$x = $a;`: `$x`
        // must not be live there (it is overwritten before any read).
        let entry = &f.cfg.blocks[f.cfg.entry];
        let mut live = sol[f.cfg.entry].clone();
        for item in entry.items.iter().skip(1).rev() {
            apply_item_backward(item, &mut live);
        }
        assert!(!live.0.contains("x"));
        assert!(live.0.contains("a") || !live.0.contains("x"));
    }

    #[test]
    fn main_exit_keeps_everything_live() {
        let prog = parse("$x = 1;").unwrap();
        let scopes = lower_program(&prog);
        let sol = solve_liveness(&scopes[0]);
        assert!(sol[scopes[0].cfg.entry].0.contains("x"));
    }
}
