//! Flow-sensitive type inference over the PHP value-type lattice.
//!
//! Each scope is solved forward over its CFG with an environment lattice
//! mapping variable names to `(type, definitely-assigned)` facts. The result
//! is what lets the interpreter skip dynamic type checks on `BinOp` operands
//! whose types are proven, and what the key-shape and lint passes consult.

use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::knowledge::{builtin_ret_ty, is_builtin};
use crate::solver::{self, Direction, Lattice, NO_WIDENING};
use crate::summary::{CallEffect, CallerView};
use php_interp::ast::{BinOp, Expr, LValue, Stmt};
use std::collections::BTreeMap;

/// The PHP value-type lattice: the six concrete runtime types plus `Mixed`
/// as top. There is no bottom at this level — an unbound variable simply has
/// no entry in the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// PHP `null`.
    Null,
    /// PHP `bool`.
    Bool,
    /// PHP `int`.
    Int,
    /// PHP `float`.
    Float,
    /// PHP `string`.
    Str,
    /// PHP `array`.
    Arr,
    /// Unknown / any (top).
    Mixed,
}

impl Ty {
    /// Least upper bound: equal types stay, anything else is `Mixed`.
    pub fn join(self, other: Ty) -> Ty {
        if self == other {
            self
        } else {
            Ty::Mixed
        }
    }

    /// Whether this is a concrete (provable) type, not top.
    pub fn is_known(self) -> bool {
        self != Ty::Mixed
    }
}

/// A compile-time-known PHP scalar, used for constant propagation. The
/// constant lattice over these is flat: unknown (`None` in
/// [`VarFact::constv`]) above, exactly-this-value below.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstVal {
    /// `null`.
    Null,
    /// A known boolean.
    Bool(bool),
    /// A known integer.
    Int(i64),
    /// A known float.
    Float(f64),
    /// A known string.
    Str(String),
}

impl ConstVal {
    /// The runtime type of this constant.
    pub fn ty(&self) -> Ty {
        match self {
            ConstVal::Null => Ty::Null,
            ConstVal::Bool(_) => Ty::Bool,
            ConstVal::Int(_) => Ty::Int,
            ConstVal::Float(_) => Ty::Float,
            ConstVal::Str(_) => Ty::Str,
        }
    }

    /// The exact bytes `to_php_string` would produce at runtime, for the
    /// conversions that are trivially deterministic (floats are excluded —
    /// their formatting is not worth replicating here).
    fn php_string(&self) -> Option<String> {
        match self {
            ConstVal::Null | ConstVal::Bool(false) => Some(String::new()),
            ConstVal::Bool(true) => Some("1".to_string()),
            ConstVal::Int(i) => Some(i.to_string()),
            ConstVal::Str(s) => Some(s.clone()),
            ConstVal::Float(_) => None,
        }
    }
}

/// What the environment knows about one variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarFact {
    /// The variable's type on every path where it is assigned.
    pub ty: Ty,
    /// Whether it is assigned on *every* path reaching here.
    pub definite: bool,
    /// The exact value on every path, when constant-propagation proved one.
    pub constv: Option<ConstVal>,
}

/// The per-program-point type environment.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeEnv {
    /// Whether this point is reachable at all (`false` is the lattice
    /// bottom — the identity of join).
    pub reachable: bool,
    /// Set once the scope's bindings can no longer be tracked (`extract`,
    /// or a user call in `<main>` whose callee may touch any global). All
    /// lookups then answer `Mixed`/assigned, which also suppresses
    /// use-before-assign diagnostics downstream.
    pub any: bool,
    /// Known variables. A missing entry means "never assigned on any path".
    pub vars: BTreeMap<String, VarFact>,
}

impl TypeEnv {
    /// The reachable empty environment.
    pub fn root() -> Self {
        TypeEnv {
            reachable: true,
            any: false,
            vars: BTreeMap::new(),
        }
    }

    /// What a read of `name` yields here.
    pub fn read(&self, name: &str) -> Ty {
        if self.any {
            return Ty::Mixed;
        }
        match self.vars.get(name) {
            Some(f) if f.definite => f.ty,
            // Maybe-assigned: the value is either its assigned type or the
            // null an unset read yields.
            Some(f) => f.ty.join(Ty::Null),
            None => Ty::Null,
        }
    }

    fn bind(&mut self, name: &str, ty: Ty) {
        self.bind_const(name, ty, None);
    }

    fn bind_const(&mut self, name: &str, ty: Ty, constv: Option<ConstVal>) {
        self.vars.insert(
            name.to_string(),
            VarFact {
                ty,
                definite: true,
                constv,
            },
        );
    }

    /// A callee *may* have rebound `name`: its type degrades to `Mixed` and
    /// any constant is lost, but definiteness is unchanged (the write is not
    /// guaranteed to happen).
    fn clobber(&mut self, name: &str) {
        let fact = self.vars.entry(name.to_string()).or_insert(VarFact {
            ty: Ty::Mixed,
            definite: false,
            constv: None,
        });
        fact.ty = Ty::Mixed;
        fact.constv = None;
    }
}

impl Lattice for TypeEnv {
    fn bottom() -> Self {
        TypeEnv {
            reachable: false,
            any: false,
            vars: BTreeMap::new(),
        }
    }

    fn join_with(&mut self, other: &Self) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        if other.any && !self.any {
            self.any = true;
            changed = true;
        }
        for (name, fact) in self.vars.iter_mut() {
            let merged = match other.vars.get(name) {
                Some(of) => VarFact {
                    ty: fact.ty.join(of.ty),
                    definite: fact.definite && of.definite,
                    constv: match (&fact.constv, &of.constv) {
                        (Some(a), Some(b)) if a == b => Some(a.clone()),
                        _ => None,
                    },
                },
                None => VarFact {
                    ty: fact.ty,
                    definite: false,
                    constv: None,
                },
            };
            if merged != *fact {
                *fact = merged;
                changed = true;
            }
        }
        for (name, of) in &other.vars {
            if !self.vars.contains_key(name) {
                self.vars.insert(
                    name.clone(),
                    VarFact {
                        ty: of.ty,
                        definite: false,
                        constv: None,
                    },
                );
                changed = true;
            }
        }
        changed
    }
}

/// Infers the type of `e` under `env`, consulting `view` for the return
/// types of summarized user functions. Total: unknown cases are `Mixed`.
pub fn ty_of(e: &Expr, env: &TypeEnv, view: &CallerView<'_>) -> Ty {
    match e {
        Expr::Null => Ty::Null,
        Expr::Bool(_) => Ty::Bool,
        Expr::Int(_) => Ty::Int,
        Expr::Float(_) => Ty::Float,
        Expr::Str(_) => Ty::Str,
        Expr::Var(name) => env.read(name),
        Expr::Index { .. } => Ty::Mixed,
        Expr::ArrayLit(_) => Ty::Arr,
        Expr::Call { name, .. } => {
            if is_builtin(name) {
                builtin_ret_ty(name).unwrap_or(Ty::Mixed)
            } else {
                view.ret_ty(name)
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            let (l, r) = (ty_of(lhs, env, view), ty_of(rhs, env, view));
            match op {
                BinOp::Concat => Ty::Str,
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or => Ty::Bool,
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
                    (Ty::Int, Ty::Int) => Ty::Int,
                    (Ty::Int | Ty::Float, Ty::Int | Ty::Float) => Ty::Float,
                    _ => Ty::Mixed,
                },
                // `/` may yield Int, Float, or false (zero divisor); `%`
                // yields Int unless the divisor is zero. Only a nonzero
                // integer-literal divisor makes `%` provable.
                BinOp::Div => Ty::Mixed,
                BinOp::Mod => match **rhs {
                    Expr::Int(n) if n != 0 => Ty::Int,
                    _ => Ty::Mixed,
                },
            }
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            let t = match then {
                Some(t) => ty_of(t, env, view),
                None => ty_of(cond, env, view),
            };
            t.join(ty_of(otherwise, env, view))
        }
        Expr::Not(_) => Ty::Bool,
        Expr::Neg(inner) => match ty_of(inner, env, view) {
            Ty::Int => Ty::Int,
            Ty::Float => Ty::Float,
            _ => Ty::Mixed,
        },
    }
}

/// Evaluates `e` to a compile-time constant when every input is proven.
///
/// Only foldings whose runtime semantics are trivially replicated are
/// attempted: literals, definite constant variables, string concatenation
/// (with the exact `to_php_string` coercions for null/bool/int), wrapping
/// integer arithmetic (matching the interpreter's `wrapping_*` ops), integer
/// negation, and calls to summarized functions with a proven constant
/// return. Everything else is `None` — never guessed.
pub fn const_of(e: &Expr, env: &TypeEnv, view: &CallerView<'_>) -> Option<ConstVal> {
    match e {
        Expr::Null => Some(ConstVal::Null),
        Expr::Bool(b) => Some(ConstVal::Bool(*b)),
        Expr::Int(i) => Some(ConstVal::Int(*i)),
        Expr::Float(f) => Some(ConstVal::Float(*f)),
        Expr::Str(s) => Some(ConstVal::Str(s.clone())),
        Expr::Var(name) => {
            if env.any {
                return None;
            }
            env.vars
                .get(name)
                .filter(|f| f.definite)
                .and_then(|f| f.constv.clone())
        }
        Expr::Neg(x) => match const_of(x, env, view)? {
            ConstVal::Int(i) => Some(ConstVal::Int(i.wrapping_neg())),
            _ => None,
        },
        Expr::Bin { op, lhs, rhs } => {
            let l = const_of(lhs, env, view)?;
            let r = const_of(rhs, env, view)?;
            match op {
                BinOp::Concat => Some(ConstVal::Str(l.php_string()? + &r.php_string()?)),
                BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
                    (ConstVal::Int(a), ConstVal::Int(b)) => Some(ConstVal::Int(match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    })),
                    _ => None,
                },
                _ => None,
            }
        }
        Expr::Call { name, .. } if !is_builtin(name) => view.const_ret(name).cloned(),
        _ => None,
    }
}

/// Applies the side effects of every call inside `item`'s expressions.
/// `extract` poisons the environment; a user call's damage depends on what
/// `view` knows about the callee: with a precise effect summary only the
/// globals it (transitively) writes are clobbered, otherwise the original
/// conservative rule applies — in `<main>` everything, in a function body
/// the `global`-declared variables.
pub fn apply_call_effects(
    item: &Item<'_>,
    scope: &ScopeCfg<'_>,
    env: &mut TypeEnv,
    view: &CallerView<'_>,
) {
    for e in item_exprs(item) {
        walk_exprs(e, &mut |x| {
            if let Expr::Call { name, .. } = x {
                if name == "extract" {
                    env.any = true;
                } else if !is_builtin(name) {
                    match view.effect(name) {
                        CallEffect::Writes(globals) => {
                            for g in globals {
                                if scope.is_main || scope.globals.contains(g) {
                                    env.clobber(g);
                                }
                            }
                        }
                        CallEffect::Opaque => {
                            if scope.is_main {
                                // The callee may read or write any global —
                                // which in the script scope is every variable.
                                env.any = true;
                            } else {
                                for g in &scope.globals {
                                    env.bind(g, Ty::Mixed);
                                }
                            }
                        }
                    }
                }
            }
        });
    }
}

/// Applies `item`'s binding effects (assignments, foreach bindings,
/// `global` declarations) to `env`. Call effects must be applied first.
pub fn apply_bindings(item: &Item<'_>, env: &mut TypeEnv, view: &CallerView<'_>) {
    match item {
        Item::Stmt(Stmt::Assign { target, value }) => {
            let vt = ty_of(value, env, view);
            match target {
                LValue::Var(name) => {
                    let cv = const_of(value, env, view);
                    env.bind_const(name, vt, cv);
                }
                // Writing through `$a[...]` (auto-vivifying) proves `$a` is
                // an array afterwards.
                LValue::Index { var, .. } => env.bind(var, Ty::Arr),
            }
        }
        Item::Stmt(Stmt::Global(names)) => {
            for n in names {
                env.bind(n, Ty::Mixed);
            }
        }
        Item::ForeachBind(Stmt::Foreach {
            key_var, value_var, ..
        }) => {
            if let Some(k) = key_var {
                env.bind(k, Ty::Mixed);
            }
            env.bind(value_var, Ty::Mixed);
        }
        _ => {}
    }
}

/// The full transfer function of one item.
pub fn apply_item(item: &Item<'_>, scope: &ScopeCfg<'_>, env: &mut TypeEnv, view: &CallerView<'_>) {
    if !env.reachable {
        return;
    }
    apply_call_effects(item, scope, env, view);
    apply_bindings(item, env, view);
}

/// Solves type inference for one scope with no interprocedural knowledge;
/// returns the environment at the *entry* of every block.
pub fn solve_types(scope: &ScopeCfg<'_>) -> Vec<TypeEnv> {
    solve_types_with(scope, &CallerView::EMPTY)
}

/// Like [`solve_types`], but user-call boundaries are interpreted through
/// the function summaries behind `view`.
pub fn solve_types_with(scope: &ScopeCfg<'_>, view: &CallerView<'_>) -> Vec<TypeEnv> {
    let mut boundary = TypeEnv::root();
    for p in &scope.params {
        boundary.bind(p, Ty::Mixed);
    }
    let succs = scope.cfg.succ_lists();
    solver::solve(
        &succs,
        &[scope.cfg.entry],
        &boundary,
        Direction::Forward,
        &mut |b, input| {
            let mut env = input.clone();
            for item in &scope.cfg.blocks[b].items {
                apply_item(item, scope, &mut env, view);
            }
            env
        },
        NO_WIDENING,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use php_interp::parse;

    /// Runs inference and returns the environment at scope exit.
    fn exit_env(src: &str) -> TypeEnv {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let main = &scopes[0];
        let sol = solve_types(main);
        sol[main.cfg.exit].clone()
    }

    #[test]
    fn literals_assign_concrete_types() {
        let env = exit_env("$i = 1; $s = 'x'; $f = 1.5; $b = true; $n = null; $a = array(1);");
        assert_eq!(env.read("i"), Ty::Int);
        assert_eq!(env.read("s"), Ty::Str);
        assert_eq!(env.read("f"), Ty::Float);
        assert_eq!(env.read("b"), Ty::Bool);
        assert_eq!(env.read("n"), Ty::Null);
        assert_eq!(env.read("a"), Ty::Arr);
    }

    #[test]
    fn branch_join_widens_to_mixed() {
        let env = exit_env("if ($c) { $x = 1; } else { $x = 'one'; } $y = $x;");
        assert_eq!(env.read("x"), Ty::Mixed);
        // But a consistently-typed variable survives the join.
        let env = exit_env("if ($c) { $x = 1; } else { $x = 2; }");
        assert_eq!(env.read("x"), Ty::Int);
    }

    #[test]
    fn one_armed_assignment_is_not_definite() {
        let env = exit_env("if ($c) { $x = 'v'; }");
        let f = env.vars.get("x").unwrap();
        assert!(!f.definite);
        // A maybe-assigned string reads as Str|Null = Mixed.
        assert_eq!(env.read("x"), Ty::Mixed);
    }

    #[test]
    fn loops_reach_fixpoint() {
        // `$n` flips Int -> stays Int through the back edge; `$s` grows a
        // string each iteration.
        let env = exit_env("$n = 0; $s = ''; while ($n < 3) { $n = $n + 1; $s = $s . 'x'; }");
        assert_eq!(env.read("n"), Ty::Int);
        assert_eq!(env.read("s"), Ty::Str);
    }

    #[test]
    fn builtin_returns_are_typed_and_user_calls_poison_main() {
        let env = exit_env("$n = strlen('abc'); $s = strtolower('A');");
        assert_eq!(env.read("n"), Ty::Int);
        assert_eq!(env.read("s"), Ty::Str);

        let env = exit_env("function f() { global $g; $g = 1; } $x = 7; f();");
        assert!(env.any, "a user call in <main> may rebind any variable");
        assert_eq!(env.read("x"), Ty::Mixed);
    }

    #[test]
    fn function_locals_survive_calls_but_globals_do_not() {
        let prog = parse(
            "function helper() {}\n\
             function f() { global $g; $x = 1; helper(); $y = $x + $g; }",
        )
        .unwrap();
        let scopes = lower_program(&prog);
        let f = scopes.iter().find(|s| s.name == "f").unwrap();
        let sol = solve_types(f);
        let env = &sol[f.cfg.exit];
        assert_eq!(
            env.read("x"),
            Ty::Int,
            "locals are immune to callee effects"
        );
        assert_eq!(
            env.read("g"),
            Ty::Mixed,
            "globals are clobbered by the call"
        );
    }

    #[test]
    fn concat_and_compare_are_typed_regardless_of_operands() {
        let env = exit_env("$s = $u . 'x'; $b = $u < $v;");
        assert_eq!(env.read("s"), Ty::Str);
        assert_eq!(env.read("b"), Ty::Bool);
    }
}
