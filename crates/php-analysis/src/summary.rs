//! Bottom-up function summaries over the condensed call graph.
//!
//! Each function gets a [`FuncSummary`]: its return type and (when provable)
//! constant return value, the set of globals it may write transitively, an
//! opacity flag for `extract`/unknown callees, and a per-parameter retention
//! vector for the escape analysis. Summaries are computed by running the
//! existing monotone solver ([`crate::types::solve_types_with`]) over each
//! scope in the call graph's reverse topological (callee-first) order; the
//! scopes of a recursive component are iterated to a fixpoint from an
//! optimistic seed, with value facts (return type/constant) pinned to ⊤ so
//! only the monotone boolean/set facts benefit from the iteration.
//!
//! Callers consume summaries through a [`CallerView`], which the type,
//! escape, taint, and commit passes thread through their transfer functions.
//! An empty view reproduces the original intraprocedural behavior exactly.

use crate::callgraph::CallGraph;
use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::escape::escaping_vars_with;
use crate::knowledge::is_builtin;
use crate::types::{const_of, solve_types_with, ty_of, ConstVal, Ty};
use php_interp::ast::{Expr, LValue, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// What one function does to its caller's world.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSummary {
    /// Join of the types of every value the function can return (including
    /// the implicit `null` of falling off the end).
    pub ret_ty: Ty,
    /// The exact return value, when every return path yields the same
    /// constant. `None` is ⊤ (unknown), not "returns null".
    pub const_ret: Option<ConstVal>,
    /// Globals the function (or anything it calls) may write.
    pub writes_globals: BTreeSet<String>,
    /// The function (transitively) runs `extract` or calls an undefined
    /// name — its effects cannot be bounded and callers must assume the
    /// worst.
    pub opaque_effects: bool,
    /// Per-parameter: may the argument's value outlive the call (stored,
    /// returned, written to a global)? `false` lets callers elide the
    /// refcount pair on the argument fetch.
    pub param_retained: Vec<bool>,
}

/// Summaries for every function scope, by name.
#[derive(Debug, Default, PartialEq)]
pub struct Summaries {
    /// One summary per defined function (never `<main>`).
    pub by_name: BTreeMap<String, FuncSummary>,
}

/// How a call mutates the caller-visible environment.
pub enum CallEffect<'a> {
    /// Only these globals may be rebound.
    Writes(&'a BTreeSet<String>),
    /// Anything may happen (unknown callee or opaque summary).
    Opaque,
}

/// A caller's read-only window onto the computed summaries. The empty view
/// knows nothing and reproduces intraprocedural behavior.
#[derive(Clone, Copy, Default)]
pub struct CallerView<'a> {
    sums: Option<&'a Summaries>,
}

impl<'a> CallerView<'a> {
    /// The view with no interprocedural knowledge.
    pub const EMPTY: CallerView<'static> = CallerView { sums: None };

    /// A view over `sums`.
    pub fn of(sums: &'a Summaries) -> CallerView<'a> {
        CallerView { sums: Some(sums) }
    }

    /// The summary for `name`, if one was computed.
    pub fn summary(&self, name: &str) -> Option<&'a FuncSummary> {
        self.sums.and_then(|s| s.by_name.get(name))
    }

    /// Return type of a user call to `name` (⊤ when unknown).
    pub fn ret_ty(&self, name: &str) -> Ty {
        self.summary(name).map_or(Ty::Mixed, |s| s.ret_ty)
    }

    /// Constant return value of `name`, when proven.
    pub fn const_ret(&self, name: &str) -> Option<&'a ConstVal> {
        self.summary(name).and_then(|s| s.const_ret.as_ref())
    }

    /// Environment damage of a call to `name`.
    pub fn effect(&self, name: &str) -> CallEffect<'a> {
        match self.summary(name) {
            Some(s) if !s.opaque_effects => CallEffect::Writes(&s.writes_globals),
            _ => CallEffect::Opaque,
        }
    }

    /// May argument `i` of a call to `name` outlive the call? Unknown
    /// callees and surplus arguments answer conservatively.
    pub fn arg_retained(&self, name: &str, i: usize) -> bool {
        match self.summary(name) {
            Some(s) if !s.opaque_effects => s.param_retained.get(i).copied().unwrap_or(false),
            _ => true,
        }
    }

    /// Does a call site of `name` gain anything from the summary (a typed
    /// return or bounded effects)? Used to mark sites for the
    /// summaries-applied savings counter.
    pub fn call_benefits(&self, name: &str) -> bool {
        self.summary(name)
            .is_some_and(|s| s.ret_ty.is_known() || !s.opaque_effects)
    }
}

/// Computes summaries for every function scope, bottom-up over `cg`.
pub fn compute_summaries(scopes: &[ScopeCfg<'_>], cg: &CallGraph) -> Summaries {
    let mut sums = Summaries::default();
    for scc in &cg.sccs {
        let members: Vec<usize> = scc
            .iter()
            .copied()
            .filter(|&i| !scopes[i].is_main)
            .collect();
        if members.is_empty() {
            continue;
        }
        let cyclic = cg.recursive[members[0]];
        // Optimistic seed so in-component callees resolve during iteration.
        for &i in &members {
            sums.by_name.insert(
                scopes[i].name.clone(),
                FuncSummary {
                    ret_ty: if cyclic { Ty::Mixed } else { Ty::Null },
                    const_ret: None,
                    writes_globals: BTreeSet::new(),
                    opaque_effects: false,
                    param_retained: vec![false; scopes[i].params.len()],
                },
            );
        }
        loop {
            let mut changed = false;
            for &i in &members {
                let mut s = summarize_scope(&scopes[i], cg, i, &sums);
                if cyclic {
                    // Value facts through a cycle would need a per-component
                    // fixpoint over the value lattice; pin them to ⊤ and keep
                    // only the monotone boolean/set facts precise.
                    s.ret_ty = Ty::Mixed;
                    s.const_ret = None;
                }
                if sums.by_name.get(&scopes[i].name) != Some(&s) {
                    sums.by_name.insert(scopes[i].name.clone(), s);
                    changed = true;
                }
            }
            if !cyclic || !changed {
                break;
            }
        }
    }
    sums
}

/// One pass over a single scope under the current summary state.
fn summarize_scope(
    scope: &ScopeCfg<'_>,
    cg: &CallGraph,
    scope_idx: usize,
    sums: &Summaries,
) -> FuncSummary {
    let view = CallerView::of(sums);
    let type_in = solve_types_with(scope, &view);
    let succs = scope.cfg.succ_lists();

    // Return type and constant: join over every reachable return point,
    // plus the implicit null of any fall-off path into the exit block.
    let mut ret_ty: Option<Ty> = None;
    let mut const_ret = ConstJoin::Unset;
    let mut join_ret = |ty: Ty, cv: Option<ConstVal>| {
        ret_ty = Some(ret_ty.map_or(ty, |t| t.join(ty)));
        const_ret.join(cv);
    };
    for (b, block) in scope.cfg.blocks.iter().enumerate() {
        if b == scope.cfg.exit {
            continue;
        }
        let mut env = type_in[b].clone();
        let mut ends_with_return = false;
        for item in &block.items {
            ends_with_return = false;
            if let Item::Stmt(Stmt::Return(v)) = item {
                ends_with_return = true;
                if env.reachable {
                    match v {
                        Some(e) => join_ret(ty_of(e, &env, &view), const_of(e, &env, &view)),
                        None => join_ret(Ty::Null, Some(ConstVal::Null)),
                    }
                }
            }
            crate::types::apply_item(item, scope, &mut env, &view);
        }
        if env.reachable && !ends_with_return && succs[b].contains(&scope.cfg.exit) {
            join_ret(Ty::Null, Some(ConstVal::Null));
        }
    }

    // Effects: global writes and opacity, merged transitively from callees.
    let mut writes_globals = BTreeSet::new();
    let mut opaque_effects = cg.calls_unknown[scope_idx];
    fn note_write(scope: &ScopeCfg<'_>, writes: &mut BTreeSet<String>, name: &str) {
        if scope.globals.contains(name) {
            writes.insert(name.to_string());
        }
    }
    for block in &scope.cfg.blocks {
        for item in &block.items {
            match item {
                Item::Stmt(Stmt::Assign { target, .. }) => match target {
                    LValue::Var(n) => note_write(scope, &mut writes_globals, n),
                    LValue::Index { var, .. } => note_write(scope, &mut writes_globals, var),
                },
                Item::ForeachBind(Stmt::Foreach {
                    key_var, value_var, ..
                }) => {
                    if let Some(k) = key_var {
                        note_write(scope, &mut writes_globals, k);
                    }
                    note_write(scope, &mut writes_globals, value_var);
                }
                _ => {}
            }
            for e in item_exprs(item) {
                walk_exprs(e, &mut |x| {
                    if let Expr::Call { name, .. } = x {
                        if name == "extract" {
                            opaque_effects = true;
                        } else if !is_builtin(name) {
                            match sums.by_name.get(name) {
                                Some(cs) => {
                                    opaque_effects |= cs.opaque_effects;
                                    writes_globals.extend(cs.writes_globals.iter().cloned());
                                }
                                None => opaque_effects = true,
                            }
                        }
                    }
                });
            }
        }
    }

    // Parameter retention comes straight from the escape analysis.
    let esc = escaping_vars_with(scope, &view);
    let param_retained = scope.params.iter().map(|p| esc.contains(p)).collect();

    FuncSummary {
        ret_ty: ret_ty.unwrap_or(Ty::Null),
        const_ret: const_ret.into_option(),
        writes_globals,
        opaque_effects,
        param_retained,
    }
}

/// Three-state join for the constant-return lattice: unset ⊑ known ⊑ ⊤.
enum ConstJoin {
    Unset,
    Known(ConstVal),
    Top,
}

impl ConstJoin {
    fn join(&mut self, v: Option<ConstVal>) {
        match (&*self, v) {
            (ConstJoin::Top, _) | (_, None) => *self = ConstJoin::Top,
            (ConstJoin::Unset, Some(v)) => *self = ConstJoin::Known(v),
            (ConstJoin::Known(a), Some(b)) => {
                if *a != b {
                    *self = ConstJoin::Top;
                }
            }
        }
    }

    fn into_option(self) -> Option<ConstVal> {
        match self {
            ConstJoin::Known(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use php_interp::parse;

    fn summaries(src: &str) -> Summaries {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let cg = CallGraph::build(&scopes);
        compute_summaries(&scopes, &cg)
    }

    #[test]
    fn return_types_and_constants_propagate_bottom_up() {
        let s = summaries(
            "function pat() { return '/[a-z]+/'; }\n\
             function wrap() { return pat(); }\n\
             function len($x) { return strlen($x); }\n\
             echo wrap();",
        );
        let pat = &s.by_name["pat"];
        assert_eq!(pat.ret_ty, Ty::Str);
        assert_eq!(pat.const_ret, Some(ConstVal::Str("/[a-z]+/".to_string())));
        let wrap = &s.by_name["wrap"];
        assert_eq!(
            wrap.const_ret,
            Some(ConstVal::Str("/[a-z]+/".to_string())),
            "constant returns flow through the condensed graph"
        );
        assert_eq!(s.by_name["len"].ret_ty, Ty::Int);
    }

    #[test]
    fn implicit_null_paths_widen_the_return_type() {
        let s = summaries("function f($c) { if ($c) { return 1; } } f(0);");
        assert_eq!(s.by_name["f"].ret_ty, Ty::Mixed, "Int join Null");
        assert_eq!(s.by_name["f"].const_ret, None);
    }

    #[test]
    fn global_writes_are_transitive_and_extract_is_opaque() {
        let s = summaries(
            "function w() { global $g; $g = 1; }\n\
             function t() { w(); }\n\
             function x($a) { extract($a); }\n\
             t(); x(array());",
        );
        assert!(s.by_name["t"].writes_globals.contains("g"));
        assert!(!s.by_name["t"].opaque_effects);
        assert!(s.by_name["x"].opaque_effects);
    }

    #[test]
    fn param_retention_distinguishes_transient_from_stored() {
        let s = summaries(
            "function t($a, $b) { echo $a; return strlen($b); }\n\
             function k($v) { global $keep; $keep = $v; }\n\
             t(1, 2); k(3);",
        );
        assert_eq!(s.by_name["t"].param_retained, vec![false, false]);
        assert_eq!(s.by_name["k"].param_retained, vec![true]);
    }

    #[test]
    fn recursion_pins_value_facts_but_keeps_effect_facts() {
        let s = summaries(
            "function f($n) { return $n ? f($n - 1) : 0; }\n\
             f(3);",
        );
        let f = &s.by_name["f"];
        assert_eq!(f.ret_ty, Ty::Mixed);
        assert_eq!(f.const_ret, None);
        assert!(!f.opaque_effects, "recursion alone is not opaque");
        assert!(f.writes_globals.is_empty());
    }
}
