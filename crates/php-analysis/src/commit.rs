//! The commit pass: replays each scope with its fixpoint solutions in hand,
//! writes proven facts into the [`AnalysisFacts`] side-table, and emits the
//! lint diagnostics.
//!
//! This is the only pass that interns AST nodes — everything the
//! interpreter will later look up by node identity is recorded here.

use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::escape::EscapeSet;
use crate::knowledge::{guard_ty, is_builtin};
use crate::liveness::{apply_item_backward, LiveSet};
use crate::report::{Lint, LintKind, ScopeReport};
use crate::summary::CallerView;
use crate::types::{apply_bindings, apply_call_effects, const_of, ty_of, ConstVal, Ty, TypeEnv};
use php_interp::ast::{BinOp, Expr, LValue, Stmt};
use php_interp::{strip_delimiters, AnalysisFacts, KeyShape};
use regex_engine::Regex;
use std::collections::BTreeSet;

/// Bytes a transient string of `len` content bytes occupies on the heap
/// (mirrors `PhpStr::heap_size`: header + payload).
const STR_HEADER_BYTES: usize = 16;

/// Bytes `PhpMachine::new_array` allocates for an array shell.
const ARRAY_SHELL_BYTES: usize = 64;

/// Statically evaluates the truthiness of a constant expression.
fn const_truth(e: &Expr) -> Option<bool> {
    match e {
        Expr::Null => Some(false),
        Expr::Bool(b) => Some(*b),
        Expr::Int(i) => Some(*i != 0),
        Expr::Float(f) => Some(*f != 0.0),
        Expr::Str(s) => Some(!s.is_empty() && s != "0"),
        Expr::Not(x) => const_truth(x).map(|b| !b),
        Expr::Bin { op, lhs, rhs } => {
            let (l, r) = (const_int(lhs)?, const_int(rhs)?);
            Some(match op {
                BinOp::Eq => l == r,
                BinOp::Ne => l != r,
                BinOp::Lt => l < r,
                BinOp::Gt => l > r,
                BinOp::Le => l <= r,
                BinOp::Ge => l >= r,
                BinOp::And => l != 0 && r != 0,
                BinOp::Or => l != 0 || r != 0,
                _ => return None,
            })
        }
        _ => None,
    }
}

fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(i) => Some(*i),
        Expr::Bool(b) => Some(*b as i64),
        Expr::Neg(x) => const_int(x).map(|i| i.wrapping_neg()),
        _ => None,
    }
}

/// One scope's commit state.
struct Committer<'a, 'f> {
    scope: &'a ScopeCfg<'a>,
    escapes: &'a EscapeSet,
    view: CallerView<'a>,
    facts: &'f mut AnalysisFacts,
    lints: &'f mut Vec<Lint>,
    report: ScopeReport,
    /// Deduplicates use-before-assign per variable.
    warned_unassigned: BTreeSet<String>,
}

impl Committer<'_, '_> {
    fn lint(&mut self, kind: LintKind, message: String) {
        self.lints.push(Lint {
            kind,
            scope: self.scope.name.clone(),
            message,
        });
    }

    /// Facts and lints derived from the expressions of one item, under the
    /// environment holding *before* the item's bindings take effect.
    fn visit_exprs(&mut self, item: &Item<'_>, env: &TypeEnv) {
        for top in item_exprs(item) {
            walk_exprs(top, &mut |e| match e {
                Expr::Var(name) => {
                    // Use-before-assign: reachable read of a variable not
                    // assigned on every path (and possibly on none).
                    if env.reachable && !env.any && !self.warned_unassigned.contains(name) {
                        let assigned = env.vars.get(name).is_some_and(|f| f.definite);
                        if !assigned {
                            self.warned_unassigned.insert(name.clone());
                            let how = if env.vars.contains_key(name) {
                                "may be used before assignment"
                            } else {
                                "is used but never assigned"
                            };
                            self.lint(LintKind::UseBeforeAssign, format!("variable ${name} {how}"));
                        }
                    }
                    // Reads of non-escaping variables are transient: elide
                    // the refcount increment on the fetch.
                    if !self.escapes.contains(name) {
                        let id = self.facts.intern_expr(e);
                        self.facts.mark_rc_elide_read(id);
                        self.report.rc_elided_reads += 1;
                    }
                }
                Expr::Bin { op, lhs, rhs } => {
                    self.report.bin_ops += 1;
                    self.report.operand_slots += 2;
                    let (lt, rt) = (ty_of(lhs, env, &self.view), ty_of(rhs, env, &self.view));
                    let (lk, rk) = (lt.is_known(), rt.is_known());
                    self.report.typed_operands += lk as usize + rk as usize;
                    if lk || rk {
                        let id = self.facts.intern_expr(e);
                        self.facts.set_bin_typed(id, lk, rk);
                    }
                    // A constant-folded concatenation still allocates its
                    // transient result at runtime — but with a statically
                    // known size, which feeds heap free-list pre-seeding.
                    if *op == BinOp::Concat {
                        if let Some(ConstVal::Str(s)) = const_of(e, env, &self.view) {
                            self.facts.add_alloc_size_hint(STR_HEADER_BYTES + s.len());
                        }
                    }
                }
                Expr::ArrayLit(_) => {
                    self.facts.add_alloc_size_hint(ARRAY_SHELL_BYTES);
                }
                Expr::Call { name, args } => {
                    if is_builtin(name) {
                        // `preg_*` with a constant-propagated pattern:
                        // compile at analysis time, through the exact same
                        // path the interpreter would use per request.
                        if name == "preg_match" || name == "preg_replace" {
                            if let Some(ConstVal::Str(pat)) =
                                args.first().and_then(|a| const_of(a, env, &self.view))
                            {
                                if let Some(re) =
                                    strip_delimiters(&pat).and_then(|p| Regex::new(p).ok())
                                {
                                    let id = self.facts.intern_expr(e);
                                    self.facts.set_precompiled_regex(id, re);
                                    self.report.preg_precompiled += 1;
                                }
                            }
                        }
                    } else if self.view.call_benefits(name) {
                        let id = self.facts.intern_expr(e);
                        self.facts.mark_call_summarized(id);
                        self.report.summarized_calls += 1;
                    }
                }
                // `$a['lit']`: the key's hash folds at specialization.
                Expr::Index { base, key }
                    if matches!(**base, Expr::Var(_)) && matches!(**key, Expr::Str(_)) =>
                {
                    let id = self.facts.intern_expr(e);
                    self.facts.set_key_shape(id, KeyShape::ConstStr);
                    self.report.const_str_sites += 1;
                }
                _ => {}
            });
        }
    }

    /// Condition lints: constant conditions and decided type guards.
    fn visit_cond(&mut self, cond: &Expr, env: &TypeEnv) {
        if !env.reachable {
            return;
        }
        if let Some(truth) = const_truth(cond) {
            self.lint(
                LintKind::ConstantCondition,
                format!("condition is always {truth}"),
            );
            return;
        }
        // `is_*($x)` where $x's type is proven.
        if let Expr::Call { name, args } = cond {
            if let (Some(guard), [Expr::Var(var)]) = (guard_ty(name), args.as_slice()) {
                if !env.any {
                    if let Some(f) = env.vars.get(var) {
                        if f.definite && f.ty.is_known() {
                            let outcome = f.ty == guard;
                            self.lint(
                                LintKind::AlwaysTrueGuard,
                                format!("{name}(${var}) is always {outcome}: ${var} is {:?}", f.ty),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Statement-level facts: store elision, key shapes, dead stores.
    fn visit_stmt(&mut self, item: &Item<'_>, env: &TypeEnv, live_after: &LiveSet) {
        match item {
            Item::Stmt(s @ Stmt::Assign { target, .. }) => {
                let id = self.facts.intern_stmt(s);
                match target {
                    LValue::Var(name) => {
                        if !self.escapes.contains(name) {
                            self.facts.mark_rc_elide_store(id);
                            self.report.rc_elided_stores += 1;
                        }
                        if env.reachable && !live_after.0.contains(name) {
                            self.lint(
                                LintKind::DeadStore,
                                format!("value assigned to ${name} is never read"),
                            );
                        }
                    }
                    LValue::Index {
                        key: Some(Expr::Str(_)),
                        ..
                    } => {
                        self.facts.set_key_shape(id, KeyShape::ConstStr);
                        self.report.const_str_sites += 1;
                    }
                    LValue::Index { var, key: None } => {
                        // `$a[] = v` appends a fresh monotonic integer key —
                        // provable when $a is known to be an array here.
                        if !env.any
                            && env
                                .vars
                                .get(var)
                                .is_some_and(|f| f.definite && f.ty == Ty::Arr)
                        {
                            self.facts.set_key_shape(id, KeyShape::IntAppend);
                            self.report.int_append_sites += 1;
                        }
                    }
                    LValue::Index { .. } => {}
                }
            }
            Item::ForeachBind(
                s @ Stmt::Foreach {
                    key_var, value_var, ..
                },
            ) => {
                let binds_escape = self.escapes.contains(value_var)
                    || key_var.as_deref().is_some_and(|k| self.escapes.contains(k));
                if !binds_escape {
                    let id = self.facts.intern_stmt(s);
                    self.facts.mark_rc_elide_store(id);
                    self.report.rc_elided_stores += 1;
                }
            }
            _ => {}
        }
    }
}

/// Replays `scope` under its type and liveness solutions, filling `facts`
/// and appending to `lints`; returns the scope's statistics. Call
/// boundaries are judged through `view` — pass [`CallerView::EMPTY`] for
/// intraprocedural behavior.
pub fn commit_scope<'a>(
    scope: &'a ScopeCfg<'a>,
    escapes: &'a EscapeSet,
    view: CallerView<'a>,
    type_in: &[TypeEnv],
    live_out: &[LiveSet],
    facts: &mut AnalysisFacts,
    lints: &mut Vec<Lint>,
) -> ScopeReport {
    let mut c = Committer {
        scope,
        escapes,
        view,
        facts,
        lints,
        report: ScopeReport {
            name: scope.name.clone(),
            blocks: scope.cfg.blocks.len(),
            ..ScopeReport::default()
        },
        warned_unassigned: BTreeSet::new(),
    };

    for (b, block) in scope.cfg.blocks.iter().enumerate() {
        // Per-item live-after sets, computed backward from the block exit.
        let mut after = vec![LiveSet::default(); block.items.len()];
        let mut live = live_out[b].clone();
        for (i, item) in block.items.iter().enumerate().rev() {
            after[i] = live.clone();
            apply_item_backward(item, &mut live);
        }

        let mut env = type_in[b].clone();
        for (item, live_after) in block.items.iter().zip(&after) {
            // Mirror the transfer function's order: call effects first, so
            // expression types are judged in the post-call environment.
            apply_call_effects(item, scope, &mut env, &view);
            c.visit_exprs(item, &env);
            if let Item::Cond(cond) = item {
                c.visit_cond(cond, &env);
            }
            c.visit_stmt(item, &env, live_after);
            apply_bindings(item, &mut env, &view);
        }
    }
    c.report
}
