//! A generic monotone data-flow framework: join-semilattice trait plus a
//! worklist solver with configurable direction and a widening threshold.
//!
//! The solver is deliberately graph-shaped rather than AST-shaped — it takes
//! plain successor lists — so analyses over [`Cfg`](crate::cfg::Cfg)s and
//! unit tests over hand-built graphs use the same code path.

use std::collections::VecDeque;

/// A join-semilattice element.
///
/// `bottom` is the identity of `join_with`; transfer functions must be
/// monotone for the fixpoint to be the least solution. `widen_with` is used
/// instead of `join_with` once a block's input has been updated more than
/// the solver's `widen_after` threshold — lattices of infinite (or
/// impractically tall) height override it to force convergence.
pub trait Lattice: Clone {
    /// The least element.
    fn bottom() -> Self;
    /// Joins `other` into `self`; returns whether `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;
    /// Widens `self` by `other`; returns whether `self` changed.
    /// Defaults to plain join (fine for finite-height lattices).
    fn widen_with(&mut self, other: &Self) -> bool {
        self.join_with(other)
    }
}

/// Direction of a data-flow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along edges (e.g. type inference, reaching definitions).
    Forward,
    /// Facts flow against edges (e.g. liveness).
    Backward,
}

/// Runs a worklist fixpoint over the graph given by `succs`.
///
/// * `boundary_blocks` get `boundary` as their initial input (the entry
///   block for forward analyses, the exit block for backward ones); every
///   other block starts at bottom.
/// * `transfer(b, input)` maps a block's input fact to its output fact —
///   entry→exit for forward, exit→entry for backward.
/// * After a block's input has been updated `widen_after` times, further
///   updates use [`Lattice::widen_with`].
///
/// Returns the fixpoint *input* fact of every block: the fact at block entry
/// for forward analyses, the fact at block exit for backward ones.
pub fn solve<L: Lattice>(
    succs: &[Vec<usize>],
    boundary_blocks: &[usize],
    boundary: &L,
    direction: Direction,
    transfer: &mut dyn FnMut(usize, &L) -> L,
    widen_after: u32,
) -> Vec<L> {
    let n = succs.len();
    let edges: Vec<Vec<usize>> = match direction {
        Direction::Forward => succs.to_vec(),
        Direction::Backward => {
            let mut preds = vec![Vec::new(); n];
            for (b, ss) in succs.iter().enumerate() {
                for &s in ss {
                    preds[s].push(b);
                }
            }
            preds
        }
    };

    let mut input: Vec<L> = (0..n).map(|_| L::bottom()).collect();
    for &b in boundary_blocks {
        input[b] = boundary.clone();
    }
    let mut updates = vec![0u32; n];
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let out = transfer(b, &input[b]);
        for &s in &edges[b] {
            let changed = if updates[s] >= widen_after {
                input[s].widen_with(&out)
            } else {
                input[s].join_with(&out)
            };
            if changed {
                updates[s] = updates[s].saturating_add(1);
                if !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    input
}

/// Never widen: for finite-height lattices the plain join converges.
pub const NO_WIDENING: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    /// Powerset-of-strings lattice (finite height).
    #[derive(Debug, Clone, PartialEq, Default)]
    struct Names(std::collections::BTreeSet<&'static str>);

    impl Lattice for Names {
        fn bottom() -> Self {
            Self::default()
        }
        fn join_with(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().copied());
            self.0.len() != before
        }
    }

    #[test]
    fn forward_fixpoint_propagates_through_a_loop() {
        // 0 -> 1 -> 2 -> 1 (back edge), 1 -> 3
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let boundary = Names(["seed"].into());
        let sol = solve(
            &succs,
            &[0],
            &boundary,
            Direction::Forward,
            &mut |b, input| {
                let mut out = input.clone();
                if b == 2 {
                    out.0.insert("from_loop_body");
                }
                out
            },
            NO_WIDENING,
        );
        // The loop body's contribution reaches the header and the exit.
        assert!(sol[1].0.contains("seed"));
        assert!(sol[1].0.contains("from_loop_body"));
        assert!(sol[3].0.contains("from_loop_body"));
    }

    #[test]
    fn backward_direction_inverts_edges() {
        // 0 -> 1 -> 2; facts injected at 2 must reach 0.
        let succs = vec![vec![1], vec![2], vec![]];
        let boundary = Names(["live_at_exit"].into());
        let sol = solve(
            &succs,
            &[2],
            &boundary,
            Direction::Backward,
            &mut |_, input| input.clone(),
            NO_WIDENING,
        );
        assert!(sol[0].0.contains("live_at_exit"));
    }

    /// An interval lattice over i64 — unbounded ascending chains, so a loop
    /// that keeps incrementing never converges under plain join. Widening
    /// jumps straight to the infinite bound.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Interval {
        Bot,
        Range(i64, i64), // lo..=hi, i64::MAX as hi == +inf
    }

    impl Lattice for Interval {
        fn bottom() -> Self {
            Interval::Bot
        }
        fn join_with(&mut self, other: &Self) -> bool {
            let joined = match (*self, *other) {
                (x, Interval::Bot) => x,
                (Interval::Bot, y) => y,
                (Interval::Range(a, b), Interval::Range(c, d)) => {
                    Interval::Range(a.min(c), b.max(d))
                }
            };
            let changed = joined != *self;
            *self = joined;
            changed
        }
        fn widen_with(&mut self, other: &Self) -> bool {
            let widened = match (*self, *other) {
                (x, Interval::Bot) => x,
                (Interval::Bot, y) => y,
                (Interval::Range(a, b), Interval::Range(c, d)) => Interval::Range(
                    if c < a { i64::MIN } else { a },
                    if d > b { i64::MAX } else { b },
                ),
            };
            let changed = widened != *self;
            *self = widened;
            changed
        }
    }

    #[test]
    fn widening_forces_convergence_on_an_unbounded_chain() {
        // 0 -> 1 (header) -> 2 (body: x = x + 1) -> 1, 1 -> 3.
        // Under plain join the header input ascends 0..=0, 0..=1, 0..=2, ...
        // forever; with a widening threshold the solver must still terminate
        // and over-approximate the bound to +inf.
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let boundary = Interval::Range(0, 0);
        let sol = solve(
            &succs,
            &[0],
            &boundary,
            Direction::Forward,
            &mut |b, input| match (b, *input) {
                (2, Interval::Range(lo, hi)) => {
                    Interval::Range(lo.saturating_add(1), hi.saturating_add(1))
                }
                _ => *input,
            },
            3,
        );
        // Terminated (we got here) and the header covers every iteration.
        match sol[1] {
            Interval::Range(lo, hi) => {
                assert_eq!(lo, 0);
                assert_eq!(hi, i64::MAX, "widening must blow the upper bound to +inf");
            }
            Interval::Bot => panic!("header unreachable"),
        }
        assert_ne!(sol[3], Interval::Bot);
    }
}
