//! Context-insensitive, whole-program taint analysis in Yama's style.
//!
//! *Sources* are the request-bound variables of `<main>` (see
//! [`crate::knowledge::REQUEST_SOURCES`]) and anything `extract` conjures.
//! *Sanitizers* are the builtins of [`crate::knowledge::builtin_sanitizes`];
//! every other builtin propagates the taint of its arguments. *Sinks* are
//! `echo`, the pattern argument of `preg_match`/`preg_replace`, and dynamic
//! hash-table keys.
//!
//! Taint crosses call boundaries context-insensitively: if *any* caller
//! passes a tainted argument at position `i`, parameter `i` is tainted in
//! every context, and each function gets a single return-taint bit. The
//! program-level fixpoint (parameter taint, return taint, tainted globals)
//! is reached in a few passes because all three grow monotonically; a final
//! flow-sensitive replay of each scope then reports every tainted sink as a
//! [`LintKind::TaintedSink`] lint.

use crate::callgraph::CallGraph;
use crate::cfg::{Item, ScopeCfg};
use crate::knowledge::{builtin_sanitizes, is_builtin};
use crate::report::{Lint, LintKind};
use crate::solver::{self, Direction, Lattice, NO_WIDENING};
use crate::summary::CallerView;
use php_interp::ast::{Expr, LValue, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Which variables hold attacker-controlled bytes at one program point.
#[derive(Debug, Clone, PartialEq)]
struct TaintEnv {
    reachable: bool,
    /// `extract` (or an opaque callee) ran: every variable is suspect.
    all: bool,
    tainted: BTreeSet<String>,
}

impl TaintEnv {
    fn is_tainted(&self, name: &str) -> bool {
        self.all || self.tainted.contains(name)
    }

    fn set(&mut self, name: &str, tainted: bool) {
        if tainted {
            self.tainted.insert(name.to_string());
        } else {
            self.tainted.remove(name);
        }
    }
}

impl Lattice for TaintEnv {
    fn bottom() -> Self {
        TaintEnv {
            reachable: false,
            all: false,
            tainted: BTreeSet::new(),
        }
    }

    fn join_with(&mut self, other: &Self) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        if other.all && !self.all {
            self.all = true;
            changed = true;
        }
        for name in &other.tainted {
            changed |= self.tainted.insert(name.clone());
        }
        changed
    }
}

/// The whole-program state iterated to fixpoint.
#[derive(Debug, Default, PartialEq)]
struct TaintState {
    /// Per function: which parameters any caller taints.
    param_taint: BTreeMap<String, Vec<bool>>,
    /// Per function: may its return value be tainted?
    ret_taint: BTreeMap<String, bool>,
    /// Globals any scope may store tainted data into.
    global_taint: BTreeSet<String>,
}

impl TaintState {
    fn calls_tainted_ret(&self, name: &str) -> bool {
        self.ret_taint.get(name).copied().unwrap_or(true)
    }
}

/// Taint of one expression under `env` and the current program state.
fn taint_of(e: &Expr, env: &TaintEnv, st: &TaintState) -> bool {
    match e {
        Expr::Null | Expr::Bool(_) | Expr::Int(_) | Expr::Float(_) | Expr::Str(_) => false,
        Expr::Var(name) => env.is_tainted(name),
        Expr::Index { base, .. } => taint_of(base, env, st),
        Expr::ArrayLit(items) => items
            .iter()
            .any(|(k, v)| k.as_ref().is_some_and(|k| taint_of(k, env, st)) || taint_of(v, env, st)),
        Expr::Call { name, args } => {
            if is_builtin(name) {
                !builtin_sanitizes(name) && args.iter().any(|a| taint_of(a, env, st))
            } else {
                st.calls_tainted_ret(name)
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            use php_interp::ast::BinOp::*;
            match op {
                // Only concatenation carries attacker bytes into the result;
                // arithmetic and comparisons reduce to numbers/booleans.
                Concat => taint_of(lhs, env, st) || taint_of(rhs, env, st),
                _ => false,
            }
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            let t = match then {
                Some(t) => taint_of(t, env, st),
                None => taint_of(cond, env, st),
            };
            t || taint_of(otherwise, env, st)
        }
        Expr::Not(_) | Expr::Neg(_) => false,
    }
}

/// Call-boundary effects on the taint environment, mirroring
/// [`crate::types::apply_call_effects`].
fn apply_call_effects(
    item: &Item<'_>,
    scope: &ScopeCfg<'_>,
    env: &mut TaintEnv,
    st: &TaintState,
    view: &CallerView<'_>,
) {
    use crate::cfg::{item_exprs, walk_exprs};
    use crate::summary::CallEffect;
    for e in item_exprs(item) {
        walk_exprs(e, &mut |x| {
            if let Expr::Call { name, .. } = x {
                if name == "extract" {
                    env.all = true;
                } else if !is_builtin(name) {
                    match view.effect(name) {
                        CallEffect::Writes(globals) => {
                            for g in globals {
                                if scope.is_main || scope.globals.contains(g) {
                                    env.set(g, st.global_taint.contains(g));
                                }
                            }
                        }
                        CallEffect::Opaque => env.all = true,
                    }
                }
            }
        });
    }
}

/// Binding effects of one item on the taint environment.
fn apply_bindings(item: &Item<'_>, env: &mut TaintEnv, st: &TaintState) {
    match item {
        Item::Stmt(Stmt::Assign { target, value }) => {
            let vt = taint_of(value, env, st);
            match target {
                LValue::Var(name) => env.set(name, vt),
                LValue::Index { var, key } => {
                    // A tainted element (or key) taints the whole array;
                    // clean writes cannot *clear* array taint.
                    let kt = key.as_ref().is_some_and(|k| taint_of(k, env, st));
                    if vt || kt {
                        env.set(var, true);
                    }
                }
            }
        }
        Item::Stmt(Stmt::Global(names)) => {
            for n in names {
                env.set(n, st.global_taint.contains(n));
            }
        }
        Item::ForeachBind(Stmt::Foreach {
            array,
            key_var,
            value_var,
            ..
        }) => {
            let at = taint_of(array, env, st);
            if let Some(k) = key_var {
                env.set(k, at);
            }
            env.set(value_var, at);
        }
        _ => {}
    }
}

/// The boundary environment of one scope under the current state.
fn boundary(scope: &ScopeCfg<'_>, st: &TaintState) -> TaintEnv {
    let mut env = TaintEnv {
        reachable: true,
        all: false,
        tainted: BTreeSet::new(),
    };
    if scope.is_main {
        for &src in crate::knowledge::REQUEST_SOURCES {
            env.tainted.insert(src.to_string());
        }
    } else if let Some(pt) = st.param_taint.get(&scope.name) {
        for (p, &t) in scope.params.iter().zip(pt) {
            if t {
                env.tainted.insert(p.clone());
            }
        }
    }
    env
}

/// Solves the flow-sensitive taint dataflow of one scope; returns per-block
/// entry environments.
fn solve_scope(scope: &ScopeCfg<'_>, st: &TaintState, view: &CallerView<'_>) -> Vec<TaintEnv> {
    let succs = scope.cfg.succ_lists();
    solver::solve(
        &succs,
        &[scope.cfg.entry],
        &boundary(scope, st),
        Direction::Forward,
        &mut |b, input| {
            let mut env = input.clone();
            for item in &scope.cfg.blocks[b].items {
                if !env.reachable {
                    break;
                }
                apply_call_effects(item, scope, &mut env, st, view);
                apply_bindings(item, &mut env, st);
            }
            env
        },
        NO_WIDENING,
    )
}

/// One whole-program pass: re-solves every scope and folds what it learns
/// (argument taint at call sites, return taint, tainted global stores) back
/// into `st`. Returns whether anything grew.
fn propagate(scopes: &[ScopeCfg<'_>], st: &mut TaintState, view: &CallerView<'_>) -> bool {
    use crate::cfg::{item_exprs, walk_exprs};
    let before = std::mem::take(st);
    let mut next = TaintState {
        param_taint: before.param_taint.clone(),
        ret_taint: before.ret_taint.clone(),
        global_taint: before.global_taint.clone(),
    };
    for scope in scopes {
        let sol = solve_scope(scope, &before, view);
        for (b, block) in scope.cfg.blocks.iter().enumerate() {
            let mut env = sol[b].clone();
            for item in &block.items {
                if !env.reachable {
                    break;
                }
                apply_call_effects(item, scope, &mut env, &before, view);
                // Call-site argument taint feeds callee parameters.
                for e in item_exprs(item) {
                    walk_exprs(e, &mut |x| {
                        if let Expr::Call { name, args } = x {
                            if !is_builtin(name) {
                                if let Some(pt) = next.param_taint.get_mut(name) {
                                    for (i, a) in args.iter().enumerate().take(pt.len()) {
                                        pt[i] |= taint_of(a, &env, &before);
                                    }
                                }
                            }
                        }
                    });
                }
                // Return taint and tainted global stores.
                match item {
                    Item::Stmt(Stmt::Return(Some(e)))
                        if !scope.is_main && taint_of(e, &env, &before) =>
                    {
                        next.ret_taint.insert(scope.name.clone(), true);
                    }
                    Item::Stmt(Stmt::Assign { target, value }) => {
                        let name = match target {
                            LValue::Var(n) => n,
                            LValue::Index { var, .. } => var,
                        };
                        let global_store = scope.is_main || scope.globals.contains(name);
                        if global_store && taint_of(value, &env, &before) {
                            next.global_taint.insert(name.clone());
                        }
                    }
                    _ => {}
                }
                apply_bindings(item, &mut env, &before);
            }
        }
    }
    let changed = next != before;
    *st = next;
    changed
}

/// A sink the final replay found fed by tainted data.
fn sink_lint(lints: &mut Vec<Lint>, scope: &str, message: String) {
    lints.push(Lint {
        kind: LintKind::TaintedSink,
        scope: scope.to_string(),
        message,
    });
}

/// Names the first tainted variable inside a sink expression for the lint
/// message (empty when the taint comes from no nameable variable).
fn describe(e: &Expr, env: &TaintEnv) -> String {
    fn first_tainted<'e>(e: &'e Expr, env: &TaintEnv) -> Option<&'e str> {
        match e {
            Expr::Var(n) if env.is_tainted(n) => Some(n),
            Expr::Index { base, .. } => first_tainted(base, env),
            Expr::Bin { lhs, rhs, .. } => {
                first_tainted(lhs, env).or_else(|| first_tainted(rhs, env))
            }
            Expr::Call { args, .. } => args.iter().find_map(|a| first_tainted(a, env)),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => then
                .as_deref()
                .or(Some(cond))
                .and_then(|t| first_tainted(t, env))
                .or_else(|| first_tainted(otherwise, env)),
            _ => None,
        }
    }
    first_tainted(e, env)
        .map(|n| format!(" (${n})"))
        .unwrap_or_default()
}

/// Runs the whole-program taint analysis and appends one
/// [`LintKind::TaintedSink`] lint per sink reached by unsanitized request
/// input. Returns the number of lints emitted.
pub fn taint_lints(
    scopes: &[ScopeCfg<'_>],
    _cg: &CallGraph,
    view: &CallerView<'_>,
    lints: &mut Vec<Lint>,
) -> usize {
    use crate::cfg::{item_exprs, walk_exprs};
    // Seed parameter/return maps so growth is observable.
    let mut st = TaintState::default();
    for scope in scopes {
        if !scope.is_main {
            st.param_taint
                .insert(scope.name.clone(), vec![false; scope.params.len()]);
            st.ret_taint.insert(scope.name.clone(), false);
        }
    }
    while propagate(scopes, &mut st, view) {}

    // Final replay: report sinks. One lint per sinking statement.
    let mut count = 0;
    for scope in scopes {
        let sol = solve_scope(scope, &st, view);
        for (b, block) in scope.cfg.blocks.iter().enumerate() {
            let mut env = sol[b].clone();
            for item in &block.items {
                if !env.reachable {
                    break;
                }
                apply_call_effects(item, scope, &mut env, &st, view);
                match item {
                    Item::Stmt(Stmt::Echo(parts)) => {
                        if let Some(p) = parts.iter().find(|p| taint_of(p, &env, &st)) {
                            sink_lint(
                                lints,
                                &scope.name,
                                format!("request input reaches echo sink{}", describe(p, &env)),
                            );
                            count += 1;
                        }
                    }
                    Item::Stmt(Stmt::Assign {
                        target: LValue::Index { key: Some(k), .. },
                        ..
                    }) if taint_of(k, &env, &st) => {
                        sink_lint(
                            lints,
                            &scope.name,
                            format!("request input used as hash-table key{}", describe(k, &env)),
                        );
                        count += 1;
                    }
                    _ => {}
                }
                // Expression-level sinks: regex patterns and index keys.
                let mut site_lints = Vec::new();
                for e in item_exprs(item) {
                    walk_exprs(e, &mut |x| match x {
                        Expr::Call { name, args }
                            if matches!(name.as_str(), "preg_match" | "preg_replace") =>
                        {
                            if let Some(pat) = args.first() {
                                if taint_of(pat, &env, &st) {
                                    site_lints.push(format!(
                                        "request input used as {name} pattern{}",
                                        describe(pat, &env)
                                    ));
                                }
                            }
                        }
                        Expr::Index { key, .. } if taint_of(key, &env, &st) => {
                            site_lints.push(format!(
                                "request input used as hash-table key{}",
                                describe(key, &env)
                            ));
                        }
                        _ => {}
                    });
                }
                for m in site_lints {
                    sink_lint(lints, &scope.name, m);
                    count += 1;
                }
                apply_bindings(item, &mut env, &st);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use crate::summary::{compute_summaries, Summaries};
    use php_interp::parse;

    fn lints_for(src: &str) -> Vec<String> {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let cg = CallGraph::build(&scopes);
        let sums: Summaries = compute_summaries(&scopes, &cg);
        let mut lints = Vec::new();
        taint_lints(&scopes, &cg, &CallerView::of(&sums), &mut lints);
        lints.iter().map(|l| l.to_string()).collect()
    }

    #[test]
    fn unsanitized_request_echo_is_flagged_and_sanitized_is_not() {
        let lines = lints_for("echo $title;");
        assert_eq!(
            lines,
            vec!["[tainted-sink] <main>: request input reaches echo sink ($title)"]
        );
        assert!(lints_for("echo htmlspecialchars($title);").is_empty());
    }

    #[test]
    fn taint_propagates_through_builtins_and_assignments() {
        let lines = lints_for("$t = strtolower(trim($title)); echo 'x' . $t;");
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("echo sink ($t)"));
        // Numeric reduction sanitizes.
        assert!(lints_for("$n = strlen($title); echo $n;").is_empty());
    }

    #[test]
    fn taint_crosses_call_boundaries_both_ways() {
        // Parameter direction: main's tainted arg reaches the callee's echo.
        let lines = lints_for("function show($x) { echo $x; } show($title);");
        assert_eq!(
            lines,
            vec!["[tainted-sink] show: request input reaches echo sink ($x)"]
        );
        // Return direction: the callee launders nothing.
        let lines = lints_for("function id($x) { return $x; } echo id($title);");
        assert_eq!(lines.len(), 1, "{lines:?}");
        // A sanitizing callee clears it.
        let lines =
            lints_for("function safe($x) { return htmlspecialchars($x); } echo safe($title);");
        assert!(lines.is_empty(), "{lines:?}");
    }

    #[test]
    fn regex_and_hash_key_sinks_fire() {
        let lines = lints_for("preg_match($title, 'subject');");
        assert_eq!(
            lines,
            vec!["[tainted-sink] <main>: request input used as preg_match pattern ($title)"]
        );
        let lines = lints_for("$m = array(); $m[$title] = 1;");
        assert_eq!(
            lines,
            vec!["[tainted-sink] <main>: request input used as hash-table key ($title)"]
        );
    }

    #[test]
    fn locally_assigned_names_are_not_sources() {
        assert!(lints_for("$title = 'safe'; echo $title;").is_empty());
        assert!(lints_for("$cond = 1; echo $unrelated;").is_empty());
    }
}
