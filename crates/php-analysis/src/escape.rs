//! Intra-procedural escape analysis for refcount elision.
//!
//! A variable *escapes* its scope when its value may outlive the expression
//! reading it: stored into another variable or array, returned, passed to a
//! user function (or a builtin that keeps its argument), iterated by
//! `foreach`, or bound `global`. Reads of variables that never escape are
//! purely transient — the interpreter's refcount increment on the fetch and
//! the matching decrement on drop cancel out within the statement, so the
//! pair can be elided (metering-only; values still behave identically).

use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::knowledge::{consumes_args_transiently, is_builtin};
use crate::summary::CallerView;
use php_interp::ast::{Expr, LValue, Stmt};
use std::collections::BTreeSet;

/// The variables of one scope that may escape it.
#[derive(Debug, Default)]
pub struct EscapeSet {
    /// `extract()` was seen: every variable (present and future) escapes.
    pub all: bool,
    /// Individually escaping variables.
    pub vars: BTreeSet<String>,
}

impl EscapeSet {
    /// Whether `name` escapes.
    pub fn contains(&self, name: &str) -> bool {
        self.all || self.vars.contains(name)
    }
}

/// The variables whose *values* an expression can yield directly (through
/// ternaries), as opposed to values it constructs. `$a . $b` builds a new
/// string — neither root escapes through it; `$c ? $a : $b` yields one of
/// the two unchanged.
pub(crate) fn root_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            match then {
                Some(t) => root_vars(t, out),
                None => root_vars(cond, out), // elvis reuses the condition value
            }
            root_vars(otherwise, out);
        }
        _ => {}
    }
}

/// Computes the escape set of one scope with no interprocedural knowledge:
/// every user-call argument is assumed retained.
pub fn escaping_vars(scope: &ScopeCfg<'_>) -> EscapeSet {
    escaping_vars_with(scope, &CallerView::EMPTY)
}

/// Like [`escaping_vars`], but arguments passed to a summarized user
/// function only escape at the positions the callee actually retains
/// (stores, returns, or writes to a global — see
/// [`crate::summary::FuncSummary::param_retained`]).
///
/// # Missing-summary fallback (the EMPTY contract)
///
/// Summaries are an *optimization*, never a soundness requirement. When the
/// view has no summary for a callee — because the view is
/// [`CallerView::EMPTY`], the callee was never defined, or the summary pass
/// was skipped — [`CallerView::arg_retained`] answers `true` for every
/// position, and a summarized callee with `opaque_effects` degrades the same
/// way. The result is that **every argument of an unknown call escapes**:
/// exactly the assumption [`escaping_vars`] bakes in. Downstream passes
/// (refcount elision here, region/arena classification in
/// [`crate::region`]) therefore only ever lose precision when knowledge is
/// missing — an un-summarized call can keep a value alive, never prove it
/// dead. This direction matters: over-approximating the escape set merely
/// keeps a refcount pair or routes an allocation through the free-list
/// path; under-approximating it would elide work the program needed.
pub fn escaping_vars_with(scope: &ScopeCfg<'_>, view: &CallerView<'_>) -> EscapeSet {
    let mut esc = EscapeSet {
        all: false,
        vars: scope.globals.clone(),
    };
    for block in &scope.cfg.blocks {
        for item in &block.items {
            // Sub-expression rules: call arguments and array-literal
            // elements store or retain the value.
            for e in item_exprs(item) {
                walk_exprs(e, &mut |x| match x {
                    Expr::Call { name, args } => {
                        if name == "extract" {
                            esc.all = true;
                        } else if is_builtin(name) {
                            if !consumes_args_transiently(name) {
                                for a in args {
                                    root_vars(a, &mut esc.vars);
                                }
                            }
                        } else {
                            for (i, a) in args.iter().enumerate() {
                                if view.arg_retained(name, i) {
                                    root_vars(a, &mut esc.vars);
                                }
                            }
                        }
                    }
                    Expr::ArrayLit(items) => {
                        for (_, v) in items {
                            root_vars(v, &mut esc.vars);
                        }
                    }
                    _ => {}
                });
            }
            // Statement-level rules.
            match item {
                Item::Stmt(Stmt::Assign { target, value }) => {
                    match target {
                        // `$b = $a` aliases: $a's value is now also held by
                        // $b. Storing into an array keeps the value too.
                        LValue::Var(_) | LValue::Index { .. } => {
                            root_vars(value, &mut esc.vars);
                        }
                    }
                }
                Item::Stmt(Stmt::Return(Some(e))) => {
                    root_vars(e, &mut esc.vars);
                }
                // `foreach` iterates (and snapshots) the array value.
                Item::ForeachEnter(Stmt::Foreach { array, .. }) => {
                    root_vars(array, &mut esc.vars);
                }
                _ => {}
            }
        }
    }
    esc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use php_interp::parse;

    fn main_escapes(src: &str) -> EscapeSet {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        escaping_vars(&scopes[0])
    }

    #[test]
    fn echoed_and_builtin_read_vars_do_not_escape() {
        let esc = main_escapes("$t = 'x'; echo $t, strlen($t), strtoupper($t); $u = $t . '!';");
        assert!(!esc.contains("t"), "transient reads only");
    }

    #[test]
    fn returned_and_aliased_vars_escape() {
        let prog = parse("function f() { $r = 'x'; $keep = $r; return $r; }").unwrap();
        let scopes = lower_program(&prog);
        let f = scopes.iter().find(|s| s.name == "f").unwrap();
        let esc = escaping_vars(f);
        assert!(esc.contains("r"));
    }

    #[test]
    fn array_stores_user_calls_and_globals_escape() {
        let esc = main_escapes(
            "$v = 1; $a[0] = $v; $w = 2; $lit = array($w); my_fn($x); global $g; $m = max($y, $z);",
        );
        assert!(esc.contains("v"), "stored into an array");
        assert!(esc.contains("w"), "kept by an array literal");
        assert!(esc.contains("x"), "passed to a user function");
        assert!(esc.contains("g"), "global binding");
        assert!(
            esc.contains("y") && esc.contains("z"),
            "max returns an argument"
        );
        assert!(!esc.contains("m") && !esc.contains("a"));
    }

    #[test]
    fn extract_poisons_the_whole_scope() {
        let esc = main_escapes("$t = 'x'; extract($req); echo $t;");
        assert!(esc.contains("t"));
        assert!(esc.contains("anything_at_all"));
    }

    #[test]
    fn foreach_array_escapes_but_bindings_need_not() {
        let esc = main_escapes("$rows = array(1, 2); foreach ($rows as $k => $v) { echo $k, $v; }");
        assert!(esc.contains("rows"));
        assert!(!esc.contains("k") && !esc.contains("v"));
    }

    // The EMPTY contract: a view with no summary for a callee must degrade
    // to "every argument retained", matching `escaping_vars` exactly.

    #[test]
    fn empty_view_retains_every_user_call_argument() {
        let src = "function shout($x) { echo $x; } $t = 'x'; shout($t);";
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let main = scopes.iter().position(|s| s.is_main).unwrap();

        // No knowledge: the argument must be assumed kept.
        let blind = escaping_vars_with(&scopes[main], &CallerView::EMPTY);
        assert!(blind.contains("t"), "EMPTY view must retain call args");

        // With a summary, `shout` provably only echoes its parameter, so
        // the same argument no longer escapes — summaries refine, the
        // fallback stays sound.
        let cg = crate::callgraph::CallGraph::build(&scopes);
        let sums = crate::summary::compute_summaries(&scopes, &cg);
        let informed = escaping_vars_with(&scopes[main], &CallerView::of(&sums));
        assert!(!informed.contains("t"), "summary proves the arg transient");
    }

    #[test]
    fn unsummarized_callee_in_a_populated_view_still_escapes() {
        // `mystery` has no definition, so even a view that summarizes other
        // functions has nothing for it: its arguments must escape.
        let src = "function shout($x) { echo $x; } $t = 'x'; mystery($t); shout($u);";
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let main = scopes.iter().position(|s| s.is_main).unwrap();
        let cg = crate::callgraph::CallGraph::build(&scopes);
        let sums = crate::summary::compute_summaries(&scopes, &cg);
        let esc = escaping_vars_with(&scopes[main], &CallerView::of(&sums));
        assert!(esc.contains("t"), "missing summary falls back to retained");
        assert!(!esc.contains("u"), "the summarized callee still refines");
    }
}
