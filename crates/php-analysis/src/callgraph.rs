//! Call graph over the lowered scopes, with SCC condensation.
//!
//! Nodes are scopes (`<main>` plus every function); edges are direct
//! caller → callee references discovered syntactically. Builtins are not
//! nodes — their effects come from [`crate::knowledge`] tables. Calls whose
//! name matches neither a builtin nor a defined function are recorded per
//! caller as *unknown*: they poison the caller's summary to ⊤.
//!
//! Tarjan's algorithm emits strongly connected components in reverse
//! topological order — callees before callers — which is exactly the
//! bottom-up order the summary pass ([`crate::summary`]) iterates in.
//! Components of more than one scope (or a self-loop) mark recursion.

use crate::cfg::{item_exprs, walk_exprs, ScopeCfg};
use crate::knowledge::is_builtin;
use php_interp::ast::Expr;
use std::collections::{BTreeMap, BTreeSet};

/// The call graph of one lowered program.
#[derive(Debug)]
pub struct CallGraph {
    /// Scope index (into the `ScopeCfg` slice) by function name. `<main>`
    /// is present under its own name but never a call target.
    pub index: BTreeMap<String, usize>,
    /// Per-scope callee sets (indices into the scope slice).
    pub callees: Vec<BTreeSet<usize>>,
    /// Per-scope: does the scope call a name that is neither a builtin nor
    /// a defined function?
    pub calls_unknown: Vec<bool>,
    /// Strongly connected components in reverse topological order
    /// (callees first). Singleton components without a self-loop are
    /// non-recursive.
    pub sccs: Vec<Vec<usize>>,
    /// Per-scope recursion flag: the scope sits in a cycle (including a
    /// direct self-call).
    pub recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph for `scopes` (as produced by
    /// [`crate::cfg::lower_program_with`]).
    pub fn build(scopes: &[ScopeCfg<'_>]) -> CallGraph {
        let index: BTreeMap<String, usize> = scopes
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let mut callees = vec![BTreeSet::new(); scopes.len()];
        let mut calls_unknown = vec![false; scopes.len()];
        for (i, scope) in scopes.iter().enumerate() {
            for block in &scope.cfg.blocks {
                for item in &block.items {
                    for e in item_exprs(item) {
                        walk_exprs(e, &mut |x| {
                            if let Expr::Call { name, .. } = x {
                                if is_builtin(name) {
                                    return;
                                }
                                match index.get(name) {
                                    Some(&j) => {
                                        callees[i].insert(j);
                                    }
                                    None => calls_unknown[i] = true,
                                }
                            }
                        });
                    }
                }
            }
        }
        let sccs = tarjan(&callees);
        let mut recursive = vec![false; scopes.len()];
        for scc in &sccs {
            let cyclic = scc.len() > 1 || callees[scc[0]].contains(&scc[0]);
            if cyclic {
                for &n in scc {
                    recursive[n] = true;
                }
            }
        }
        CallGraph {
            index,
            callees,
            calls_unknown,
            sccs,
            recursive,
        }
    }
}

/// Iterative Tarjan SCC; components come out in reverse topological order.
fn tarjan(adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSEEN: usize = usize::MAX;
    let mut idx = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();

    // Explicit DFS frames: (node, iterator position over its callees).
    for root in 0..n {
        if idx[root] != UNSEEN {
            continue;
        }
        let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        idx[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, adj[root].iter().copied().collect(), 0));
        while let Some((v, succs, pos)) = frames.last_mut() {
            if let Some(&w) = succs.get(*pos) {
                *pos += 1;
                if idx[w] == UNSEEN {
                    idx[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, adj[w].iter().copied().collect(), 0));
                } else if on_stack[w] {
                    let v = *v;
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                let v = *v;
                frames.pop();
                if let Some((parent, _, _)) = frames.last() {
                    let p = *parent;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == idx[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use php_interp::parse;

    fn graph(src: &str) -> (Vec<String>, CallGraph) {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let names = scopes.iter().map(|s| s.name.clone()).collect();
        let cg = CallGraph::build(&scopes);
        (names, cg)
    }

    #[test]
    fn direct_calls_become_edges_and_builtins_do_not() {
        let (names, cg) = graph(
            "function leaf() { return 1; }\n\
             function mid() { return leaf() + strlen('x'); }\n\
             mid();",
        );
        let at = |n: &str| names.iter().position(|s| s == n).unwrap();
        assert!(cg.callees[at("<main>")].contains(&at("mid")));
        assert!(cg.callees[at("mid")].contains(&at("leaf")));
        assert!(cg.callees[at("mid")].len() == 1, "strlen is not a node");
        assert!(!cg.calls_unknown.iter().any(|&u| u));
    }

    #[test]
    fn unknown_callees_are_flagged_per_caller() {
        let (names, cg) = graph("function f() { mystery(); } echo 1;");
        let at = |n: &str| names.iter().position(|s| s == n).unwrap();
        assert!(cg.calls_unknown[at("f")]);
        assert!(!cg.calls_unknown[at("<main>")]);
    }

    #[test]
    fn sccs_come_out_bottom_up_and_mark_recursion() {
        let (names, cg) = graph(
            "function a() { return b(); }\n\
             function b() { return a(); }\n\
             function leaf() { return 3; }\n\
             function top() { return a() + leaf(); }\n\
             top();",
        );
        let at = |n: &str| names.iter().position(|s| s == n).unwrap();
        assert!(cg.recursive[at("a")] && cg.recursive[at("b")]);
        assert!(!cg.recursive[at("leaf")] && !cg.recursive[at("top")]);
        // Bottom-up: the {a, b} component and leaf precede top; top
        // precedes <main>.
        let pos = |n: &str| cg.sccs.iter().position(|c| c.contains(&at(n))).unwrap();
        assert!(pos("a") < pos("top"));
        assert!(pos("leaf") < pos("top"));
        assert!(pos("top") < pos("<main>"));
        assert_eq!(pos("a"), pos("b"), "mutual recursion is one component");
    }

    #[test]
    fn self_recursion_is_a_singleton_cycle() {
        let (names, cg) = graph("function f($n) { return $n ? f($n - 1) : 0; } f(3);");
        let at = |n: &str| names.iter().position(|s| s == n).unwrap();
        assert!(cg.recursive[at("f")]);
    }
}
