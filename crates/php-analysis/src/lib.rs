//! # php-analysis
//!
//! Static data-flow analysis over the mini-PHP AST: the software half of the
//! paper's specialization story. Where the accelerators (§4) make dynamic
//! work cheap, this crate *removes* dynamic work the interpreter provably
//! does not need — the dynamic type checks, refcount traffic, and hash-table
//! probe stages that §2–3 measure as the dominant overheads of server-side
//! PHP.
//!
//! The pipeline:
//!
//! 1. [`cfg`] lowers each scope (the script plus every function) into a
//!    control-flow graph of basic blocks, referencing AST nodes by address.
//! 2. [`solver`] is a generic monotone framework — join-semilattice trait,
//!    forward/backward worklist solver, widening threshold.
//! 3. [`callgraph`] builds the direct-call graph and condenses it into
//!    SCCs; [`summary`] computes bottom-up function summaries over it
//!    (return type/constant, transitive global writes, per-parameter
//!    retention), which the intraprocedural analyses consume through a
//!    [`summary::CallerView`].
//! 4. The per-scope analyses run on the solver: type inference with
//!    constant propagation ([`types`]), refcount-elision escape analysis
//!    ([`escape`]), liveness ([`liveness`]), whole-program taint
//!    ([`taint`]), and the key-shape/lint work folded into the commit pass
//!    ([`commit`]).
//! 5. Results land in a [`php_interp::AnalysisFacts`] side-table keyed by
//!    node identity — the AST is never mutated, and a missing entry always
//!    means "fall back to fully dynamic". The interpreter consults the table
//!    to skip metered type checks and refcount pairs, pass key-shape hints
//!    to the hardware hash table, reuse analysis-time-compiled `preg_*`
//!    patterns, and pre-seed the hardware heap's free lists.
//!
//! ```
//! use php_analysis::analyze;
//! use php_interp::parse;
//!
//! let prog = parse("$n = 1; $m = $n + 2; echo $m;").unwrap();
//! let analysis = analyze(&prog);
//! assert!(analysis.report.typed_operands() > 0);
//! // Attach to an interpreter with `interp.set_facts(analysis.facts.into())`.
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod commit;
pub mod effects;
pub mod escape;
pub mod knowledge;
pub mod liveness;
pub mod region;
pub mod report;
pub mod solver;
pub mod summary;
pub mod taint;
pub mod types;

use php_interp::ast::{FuncDef, Program};
use php_interp::AnalysisFacts;
use std::sync::Arc;

pub use callgraph::CallGraph;
pub use effects::{EffectSummary, Effects, FuncEffect, Purity};
pub use region::{CrossSet, RegionInfo, RegionStats};
pub use report::{Lint, LintKind, Report, ScopeReport};
pub use solver::{Direction, Lattice};
pub use summary::{CallerView, FuncSummary, Summaries};
pub use types::{ConstVal, Ty, TypeEnv};

/// Knobs for [`analyze_with_options`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Compute call-graph summaries, thread them through every pass, and run
    /// the whole-program taint analysis. Off reproduces the intraprocedural
    /// pipeline exactly (every call boundary treated as opaque).
    pub interprocedural: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            interprocedural: true,
        }
    }
}

/// Everything the analysis produced for one program.
#[derive(Debug)]
pub struct Analysis {
    /// The side-table of proven facts, keyed by node identity of the
    /// analyzed `Program` instance. Attach with
    /// [`Interp::set_facts`](php_interp::Interp::set_facts).
    pub facts: AnalysisFacts,
    /// Per-scope statistics and lint diagnostics.
    pub report: Report,
}

/// Analyzes `prog`: lowers every scope, runs the data-flow analyses to
/// fixpoint, and commits proven facts and lints.
///
/// The returned facts are valid only for this exact `Program` instance
/// (nodes are identified by address); attaching them to a clone is harmless
/// but proves nothing.
pub fn analyze(prog: &Program) -> Analysis {
    analyze_with_funcs(prog, &[])
}

/// Like [`analyze`], but function bodies are taken from `shared` (matched by
/// name) rather than from `prog`'s own definitions.
///
/// The interpreter clones hoisted function definitions into its own table, so
/// facts keyed on `prog`'s nodes can never match inside function bodies.
/// Pre-registering the same `Arc<FuncDef>` instances with
/// [`Interp::predefine_funcs`](php_interp::Interp::predefine_funcs) and
/// analyzing with them here keeps node identities aligned end to end.
pub fn analyze_with_funcs(prog: &Program, shared: &[Arc<FuncDef>]) -> Analysis {
    analyze_with_options(prog, shared, AnalyzeOptions::default())
}

/// Like [`analyze_with_funcs`], with explicit [`AnalyzeOptions`].
pub fn analyze_with_options(
    prog: &Program,
    shared: &[Arc<FuncDef>],
    opts: AnalyzeOptions,
) -> Analysis {
    let scopes = cfg::lower_program_with(prog, shared);
    let cg = callgraph::CallGraph::build(&scopes);
    let sums = opts
        .interprocedural
        .then(|| summary::compute_summaries(&scopes, &cg));
    let view = match &sums {
        Some(s) => CallerView::of(s),
        None => CallerView::EMPTY,
    };
    let regions = region::analyze_regions(&scopes, &view);
    let mut facts = AnalysisFacts::new();
    let mut report = Report::default();
    for (i, scope) in scopes.iter().enumerate() {
        let escapes = escape::escaping_vars_with(scope, &view);
        let type_in = types::solve_types_with(scope, &view);
        let live_out = liveness::solve_liveness(scope);
        let mut scope_report = commit::commit_scope(
            scope,
            &escapes,
            view,
            &type_in,
            &live_out,
            &mut facts,
            &mut report.lints,
        );
        let stats =
            region::commit_regions(scope, &regions, i, &view, &mut facts, &mut report.lints);
        scope_report.arena_safe_sites = stats.arena_safe_sites;
        scope_report.cross_request_sites = stats.cross_request_sites;
        // The function's own symbol table is an allocation site too: its
        // hash map dies when the frame pops, so it is arena-eligible unless
        // the scope's lifetimes are unprovable (`extract` poisoning).
        if !scope.is_main {
            facts.set_symtab_arena_safe(&scope.name, !regions.cross[i].all);
        }
        report.scopes.push(scope_report);
    }
    if opts.interprocedural {
        let n = taint::taint_lints(&scopes, &cg, &view, &mut report.lints);
        facts.set_taint_lint_count(n);
    }
    if let Some(sums) = &sums {
        // Effect/purity pass: prove cross-request memoizable call sites and
        // lint the cache-shaped-but-nondeterministic near-misses.
        let eff = effects::compute_effects(&scopes, &cg);
        let memo =
            effects::commit_memo_sites(prog, &scopes, &eff, sums, &mut facts, &mut report.lints);
        for (i, n) in memo.per_scope.iter().enumerate() {
            report.scopes[i].memo_sites = *n;
        }
        report.effects = effects::effect_rows(&eff, &memo);
    }
    Analysis { facts, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_interp::parse;

    #[test]
    fn end_to_end_facts_for_a_typed_snippet() {
        let prog = parse("$n = 1; $m = $n + 2; $s = 'a' . 'b'; echo $m, $s;").unwrap();
        let a = analyze(&prog);
        assert!(a.report.typed_operands() > 0, "{:?}", a.report);
        assert!(a.report.rc_elided_sites() > 0, "{:?}", a.report);
        assert_eq!(a.facts.typed_operand_count(), a.report.typed_operands());
    }

    #[test]
    fn const_string_keys_and_appends_are_hinted() {
        let prog = parse(
            "$row = array(); $row['name'] = 'x'; echo $row['name']; \
             $list = array(); $list[] = 1; $list[] = 2;",
        )
        .unwrap();
        let a = analyze(&prog);
        let (consts, appends) = a.facts.key_shape_counts();
        assert!(consts >= 2, "write + read through 'name': {:?}", a.report);
        assert_eq!(appends, 2, "{:?}", a.report);
    }

    // -- golden lint outputs over three fixed snippets -----------------------

    fn lint_lines(src: &str) -> Vec<String> {
        let prog = parse(src).unwrap();
        analyze(&prog)
            .report
            .lints
            .iter()
            .map(|l| l.to_string())
            .collect()
    }

    #[test]
    fn golden_lints_use_before_assign_and_dead_store() {
        let lines = lint_lines(
            "function f($a) {\n\
             \x20 $x = $a;\n\
             \x20 $x = 2;\n\
             \x20 echo $u;\n\
             \x20 return $x;\n\
             }",
        );
        assert_eq!(
            lines,
            vec![
                "[dead-store] f: value assigned to $x is never read",
                "[use-before-assign] f: variable $u is used but never assigned",
            ]
        );
    }

    #[test]
    fn golden_lints_type_guard_and_constant_condition() {
        let lines = lint_lines(
            "$s = 'hello';\n\
             if (is_string($s)) { echo $s; }\n\
             while (1 > 2) { echo 'never'; }",
        );
        assert_eq!(
            lines,
            vec![
                "[type-guard] <main>: is_string($s) is always true: $s is Str",
                "[constant-condition] <main>: condition is always false",
            ]
        );
    }

    #[test]
    fn golden_lints_maybe_assigned() {
        let lines = lint_lines(
            "if ($cond) { $v = 1; }\n\
             echo $v;",
        );
        assert_eq!(
            lines,
            vec![
                "[use-before-assign] <main>: variable $cond is used but never assigned",
                "[use-before-assign] <main>: variable $v may be used before assignment",
            ]
        );
    }

    #[test]
    fn quiet_code_produces_no_lints() {
        let lines = lint_lines("$a = 1; $b = $a + 1; echo $b;");
        assert!(lines.is_empty(), "{lines:?}");
    }
}
