//! Whole-program purity & effect analysis: which call sites are provably
//! memoizable across requests.
//!
//! Each function gets an [`EffectSummary`] — the globals it may
//! (transitively) read or write, whether it echoes, whether its effects are
//! bounded at all, and where it sits on the purity lattice
//!
//! ```text
//!   Pure  ⊑  RequestDet  ⊏  NonDet
//! ```
//!
//! `Pure` functions compute from their arguments alone; `RequestDet`
//! functions additionally read (or write) globals but are deterministic once
//! that state is fixed; `NonDet` functions touch the PRNG or the clock
//! ([`crate::knowledge::builtin_nondeterministic`]) and must never be
//! replayed from a cache. Summaries are propagated bottom-up over the
//! Tarjan-condensed call graph exactly like [`crate::summary`], with
//! recursive components iterated to a fixpoint from an optimistic seed (all
//! facts here are monotone sets/flags, so the fixpoint is exact).
//!
//! The commit pass ([`commit_memo_sites`]) then marks every call site whose
//! callee is *memoizable* — uniquely bound, effect-bounded, write-free,
//! deterministic, and argument-non-retaining — in the
//! [`AnalysisFacts`] side-table, carrying the callee's read-set as the
//! site's dependency fingerprint: dep *values* become part of the memo key
//! (soundness), dep *names* drive write-triggered invalidation (freshness).
//! Sites that miss memoizability only through nondeterminism raise the
//! `[nondeterministic-cacheable]` lint — the classic "someone APCu-cached a
//! session token" bug, caught statically.

use crate::callgraph::CallGraph;
use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::knowledge::{builtin_nondeterministic, is_builtin};
use crate::report::{Lint, LintKind};
use crate::summary::Summaries;
use php_interp::ast::{Expr, LValue, Program, Stmt};
use php_interp::{AnalysisFacts, MemoSiteFact};
use std::collections::{BTreeMap, BTreeSet};

/// Where a function sits on the nondeterminism lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Purity {
    /// A function of its arguments alone: no global reads or writes, no
    /// nondeterministic builtins.
    Pure,
    /// Reads (or writes) request-global state, but is deterministic once
    /// that state is fixed — cacheable keyed on arguments *plus* read-set
    /// values.
    RequestDet,
    /// Calls `rand`/`time` (transitively): two runs with identical inputs
    /// may produce different results. Never cacheable.
    NonDet,
}

impl Purity {
    /// Lattice join (least upper bound).
    pub fn join(self, other: Purity) -> Purity {
        self.max(other)
    }

    /// Stable display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Purity::Pure => "pure",
            Purity::RequestDet => "request-det",
            Purity::NonDet => "nondet",
        }
    }
}

/// What one function does to the world, transitively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSummary {
    /// Globals the function (or anything it calls) may read.
    pub reads_globals: BTreeSet<String>,
    /// Globals the function (or anything it calls) may write.
    pub writes_globals: BTreeSet<String>,
    /// The function may produce output (`echo`, warnings). Not a memo
    /// blocker — replay captures and re-emits the bytes — but reported.
    pub echoes: bool,
    /// Effects cannot be bounded (`extract`, unknown callee): every other
    /// field is meaningless and the function is never memoizable.
    pub opaque: bool,
    /// Position on the nondeterminism lattice.
    pub purity: Purity,
}

/// Effect summaries for every function scope, by name.
#[derive(Debug, Default, PartialEq)]
pub struct Effects {
    /// One summary per defined function (never `<main>`).
    pub by_name: BTreeMap<String, EffectSummary>,
}

/// One row of the `analyze` binary's effect table.
#[derive(Debug, Clone)]
pub struct FuncEffect {
    /// Function name.
    pub name: String,
    /// Sorted transitive global read-set.
    pub reads: Vec<String>,
    /// Sorted transitive global write-set.
    pub writes: Vec<String>,
    /// The function may echo.
    pub echoes: bool,
    /// Effects unbounded.
    pub opaque: bool,
    /// Purity verdict.
    pub purity: Purity,
    /// Call sites of this function proven memoizable.
    pub memo_sites: usize,
}

/// Computes effect summaries for every function scope, bottom-up over the
/// condensed call graph.
pub fn compute_effects(scopes: &[ScopeCfg<'_>], cg: &CallGraph) -> Effects {
    let mut eff = Effects::default();
    for scc in &cg.sccs {
        let members: Vec<usize> = scc
            .iter()
            .copied()
            .filter(|&i| !scopes[i].is_main)
            .collect();
        if members.is_empty() {
            continue;
        }
        let cyclic = cg.recursive[members[0]];
        // Optimistic seed so in-component callees resolve during iteration;
        // every fact is monotone, so iterating to stability is exact.
        for &i in &members {
            eff.by_name.insert(
                scopes[i].name.clone(),
                EffectSummary {
                    reads_globals: BTreeSet::new(),
                    writes_globals: BTreeSet::new(),
                    echoes: false,
                    opaque: false,
                    purity: Purity::Pure,
                },
            );
        }
        loop {
            let mut changed = false;
            for &i in &members {
                let s = effect_of_scope(&scopes[i], cg, i, &eff);
                if eff.by_name.get(&scopes[i].name) != Some(&s) {
                    eff.by_name.insert(scopes[i].name.clone(), s);
                    changed = true;
                }
            }
            if !cyclic || !changed {
                break;
            }
        }
    }
    eff
}

/// One pass over a single scope under the current effect state.
fn effect_of_scope(
    scope: &ScopeCfg<'_>,
    cg: &CallGraph,
    scope_idx: usize,
    eff: &Effects,
) -> EffectSummary {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut echoes = false;
    let mut opaque = cg.calls_unknown[scope_idx];
    let mut nondet = false;
    let global = |n: &str| scope.globals.contains(n);
    for block in &scope.cfg.blocks {
        for item in &block.items {
            match item {
                Item::Stmt(Stmt::Assign { target, .. }) => match target {
                    LValue::Var(n) if global(n) => {
                        writes.insert(n.clone());
                    }
                    LValue::Index { var, .. } if global(var) => {
                        // Read-modify-write: the base is fetched, mutated in
                        // place, and (on autovivify) rebound.
                        reads.insert(var.clone());
                        writes.insert(var.clone());
                    }
                    _ => {}
                },
                Item::Stmt(Stmt::Echo(_)) => echoes = true,
                Item::ForeachBind(Stmt::Foreach {
                    key_var, value_var, ..
                }) => {
                    if let Some(k) = key_var {
                        if global(k) {
                            writes.insert(k.clone());
                        }
                    }
                    if global(value_var) {
                        writes.insert(value_var.clone());
                    }
                }
                _ => {}
            }
            for e in item_exprs(item) {
                walk_exprs(e, &mut |x| match x {
                    Expr::Var(n) if global(n) => {
                        reads.insert(n.clone());
                    }
                    Expr::Call { name, .. } => {
                        if name == "extract" {
                            opaque = true;
                        } else if is_builtin(name) {
                            nondet |= builtin_nondeterministic(name);
                        } else {
                            match eff.by_name.get(name.as_str()) {
                                Some(cs) => {
                                    reads.extend(cs.reads_globals.iter().cloned());
                                    writes.extend(cs.writes_globals.iter().cloned());
                                    echoes |= cs.echoes;
                                    opaque |= cs.opaque;
                                    nondet |= cs.purity == Purity::NonDet;
                                }
                                // A defined-but-unsummarized callee only
                                // happens for `<main>` (never a call target)
                                // or a name outside the graph: assume the
                                // worst.
                                None => opaque = true,
                            }
                        }
                    }
                    _ => {}
                });
            }
        }
    }
    let purity = if nondet || opaque {
        Purity::NonDet
    } else if reads.is_empty() && writes.is_empty() {
        Purity::Pure
    } else {
        Purity::RequestDet
    };
    EffectSummary {
        reads_globals: reads,
        writes_globals: writes,
        echoes,
        opaque,
        purity,
    }
}

/// Function names the engines may rebind at runtime: defined more than once,
/// or defined anywhere other than the top level of the script (a nested
/// `DefineFunc` executes dynamically). Facts proven against the statically
/// lowered body would not be valid for such names.
fn rebindable_names(prog: &Program) -> BTreeSet<String> {
    fn walk(
        stmts: &[Stmt],
        top: bool,
        counts: &mut BTreeMap<String, usize>,
        nested: &mut BTreeSet<String>,
    ) {
        for s in stmts {
            match s {
                Stmt::FuncDef(f) => {
                    *counts.entry(f.name.clone()).or_insert(0) += 1;
                    if !top {
                        nested.insert(f.name.clone());
                    }
                    walk(&f.body, false, counts, nested);
                }
                Stmt::If {
                    then, otherwise, ..
                } => {
                    walk(then, false, counts, nested);
                    walk(otherwise, false, counts, nested);
                }
                Stmt::While { body, .. } | Stmt::Foreach { body, .. } => {
                    walk(body, false, counts, nested);
                }
                Stmt::For {
                    init, step, body, ..
                } => {
                    walk(std::slice::from_ref(init), false, counts, nested);
                    walk(std::slice::from_ref(step), false, counts, nested);
                    walk(body, false, counts, nested);
                }
                _ => {}
            }
        }
    }
    let mut counts = BTreeMap::new();
    let mut out = BTreeSet::new();
    walk(&prog.stmts, true, &mut counts, &mut out);
    out.extend(
        counts
            .into_iter()
            .filter(|(_, n)| *n > 1)
            .map(|(name, _)| name),
    );
    out
}

/// Is every call to `name` provably memoizable? The callee must be uniquely
/// bound, effect-bounded, write-free, deterministic (≤ `RequestDet`), and
/// must not retain any argument (a retained argument could alias the return
/// value, and replaying a deep copy would sever that alias).
fn memoizable(name: &str, eff: &Effects, sums: &Summaries, rebindable: &BTreeSet<String>) -> bool {
    if rebindable.contains(name) {
        return false;
    }
    let (Some(e), Some(s)) = (eff.by_name.get(name), sums.by_name.get(name)) else {
        return false;
    };
    !e.opaque
        && e.writes_globals.is_empty()
        && e.purity != Purity::NonDet
        && !s.opaque_effects
        && s.param_retained.iter().all(|r| !r)
}

/// Like [`memoizable`], but failing *only* on nondeterminism — the lintable
/// near-miss.
fn cacheable_but_nondet(
    name: &str,
    eff: &Effects,
    sums: &Summaries,
    rebindable: &BTreeSet<String>,
) -> bool {
    if rebindable.contains(name) {
        return false;
    }
    let (Some(e), Some(s)) = (eff.by_name.get(name), sums.by_name.get(name)) else {
        return false;
    };
    !e.opaque
        && e.writes_globals.is_empty()
        && e.purity == Purity::NonDet
        && !s.opaque_effects
        && s.param_retained.iter().all(|r| !r)
}

/// What [`commit_memo_sites`] proved.
#[derive(Debug, Default)]
pub struct MemoCommit {
    /// Memoizable-site counts, parallel to the scope slice.
    pub per_scope: Vec<usize>,
    /// Memoizable-site counts by callee name.
    pub per_callee: BTreeMap<String, usize>,
}

/// Commits memoizable call sites into `facts` (with the callee's read-set as
/// dependency fingerprint) and raises `[nondeterministic-cacheable]` lints
/// for the near-misses.
pub fn commit_memo_sites(
    prog: &Program,
    scopes: &[ScopeCfg<'_>],
    eff: &Effects,
    sums: &Summaries,
    facts: &mut AnalysisFacts,
    lints: &mut Vec<Lint>,
) -> MemoCommit {
    let rebindable = rebindable_names(prog);
    let mut commit = MemoCommit {
        per_scope: vec![0usize; scopes.len()],
        per_callee: BTreeMap::new(),
    };
    let mut noted: BTreeSet<String> = BTreeSet::new();
    for (i, scope) in scopes.iter().enumerate() {
        for block in &scope.cfg.blocks {
            for item in &block.items {
                for e in item_exprs(item) {
                    walk_exprs(e, &mut |x| {
                        let Expr::Call { name, .. } = x else { return };
                        if is_builtin(name) {
                            return;
                        }
                        if memoizable(name, eff, sums, &rebindable) {
                            let deps: Vec<String> = eff.by_name[name.as_str()]
                                .reads_globals
                                .iter()
                                .cloned()
                                .collect();
                            let id = facts.intern_expr(x);
                            facts.set_memo_site(
                                id,
                                MemoSiteFact {
                                    func: name.clone(),
                                    deps,
                                },
                            );
                            commit.per_scope[i] += 1;
                            *commit.per_callee.entry(name.clone()).or_insert(0) += 1;
                        } else if cacheable_but_nondet(name, eff, sums, &rebindable) {
                            let message = format!(
                                "{name}() is cache-shaped but calls rand/time; \
                                 memoizing it would replay a stale draw"
                            );
                            if noted.insert(format!("{}|{message}", scope.name)) {
                                lints.push(Lint {
                                    kind: LintKind::NondeterministicCacheable,
                                    scope: scope.name.clone(),
                                    message,
                                });
                            }
                        }
                    });
                }
            }
        }
    }
    commit
}

/// Builds the `analyze` binary's effect-table rows: one per function, with
/// memoizable-site counts attributed to the callee.
pub fn effect_rows(eff: &Effects, commit: &MemoCommit) -> Vec<FuncEffect> {
    eff.by_name
        .iter()
        .map(|(name, s)| FuncEffect {
            name: name.clone(),
            reads: s.reads_globals.iter().cloned().collect(),
            writes: s.writes_globals.iter().cloned().collect(),
            echoes: s.echoes,
            opaque: s.opaque,
            purity: s.purity,
            memo_sites: commit.per_callee.get(name).copied().unwrap_or(0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_program;
    use crate::summary::compute_summaries;
    use php_interp::parse;

    fn effects_of(src: &str) -> Effects {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let cg = CallGraph::build(&scopes);
        compute_effects(&scopes, &cg)
    }

    #[test]
    fn pure_function_is_pure() {
        let e = effects_of("function add($a, $b) { return $a + $b; } echo add(1, 2);");
        let s = &e.by_name["add"];
        assert_eq!(s.purity, Purity::Pure);
        assert!(s.reads_globals.is_empty() && s.writes_globals.is_empty());
        assert!(!s.echoes && !s.opaque);
    }

    #[test]
    fn global_reads_make_request_det_and_propagate_up() {
        let e = effects_of(
            "function cfg() { global $site; return $site; }\n\
             function banner() { return 'at ' . cfg(); }\n\
             $site = 'x'; echo banner();",
        );
        assert_eq!(e.by_name["cfg"].purity, Purity::RequestDet);
        let b = &e.by_name["banner"];
        assert_eq!(b.purity, Purity::RequestDet);
        assert!(
            b.reads_globals.contains("site"),
            "reads flow transitively: {b:?}"
        );
        assert!(b.writes_globals.is_empty());
    }

    #[test]
    fn rand_and_time_poison_purity_transitively() {
        let e = effects_of(
            "function tok() { return rand(); }\n\
             function page() { return 'id' . tok(); }\n\
             function clock() { return time(); }\n\
             echo page(), clock();",
        );
        assert_eq!(e.by_name["tok"].purity, Purity::NonDet);
        assert_eq!(e.by_name["page"].purity, Purity::NonDet);
        assert_eq!(e.by_name["clock"].purity, Purity::NonDet);
    }

    #[test]
    fn writes_and_echoes_are_tracked() {
        let e = effects_of(
            "function bump() { global $n; $n = $n + 1; return $n; }\n\
             function shout($m) { echo $m; return 1; }\n\
             $n = 0; bump(); shout('hi');",
        );
        let b = &e.by_name["bump"];
        assert!(b.writes_globals.contains("n") && b.reads_globals.contains("n"));
        assert_eq!(b.purity, Purity::RequestDet);
        assert!(e.by_name["shout"].echoes);
        assert!(!e.by_name["bump"].echoes);
    }

    #[test]
    fn extract_and_unknown_calls_are_opaque() {
        let e = effects_of(
            "function x($a) { extract($a); return 1; }\n\
             function u() { return mystery(); }\n\
             x(array()); u();",
        );
        assert!(e.by_name["x"].opaque);
        assert!(e.by_name["u"].opaque);
        assert_eq!(e.by_name["u"].purity, Purity::NonDet);
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        let e = effects_of(
            "function f($n) { global $g; return $n ? f($n - 1) : $g; }\n\
             $g = 1; echo f(3);",
        );
        let f = &e.by_name["f"];
        assert_eq!(f.purity, Purity::RequestDet);
        assert!(f.reads_globals.contains("g"));
        assert!(!f.opaque);
    }

    fn memo_facts(src: &str) -> (AnalysisFacts, Vec<Lint>, MemoCommit) {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let cg = CallGraph::build(&scopes);
        let sums = compute_summaries(&scopes, &cg);
        let eff = compute_effects(&scopes, &cg);
        let mut facts = AnalysisFacts::new();
        let mut lints = Vec::new();
        let commit = commit_memo_sites(&prog, &scopes, &eff, &sums, &mut facts, &mut lints);
        (facts, lints, commit)
    }

    #[test]
    fn pure_and_request_det_sites_are_committed_with_deps() {
        let (facts, lints, commit) = memo_facts(
            "function cfg() { global $site; return 'on ' . $site; }\n\
             function pure($x) { return strtoupper($x); }\n\
             $site = 'a'; echo pure('hi'), cfg();",
        );
        assert_eq!(facts.memo_site_count(), 2, "{lints:?}");
        assert_eq!(commit.per_scope[0], 2, "both sites are in <main>");
        assert_eq!(commit.per_callee["cfg"], 1);
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn writers_retainers_and_rebindables_are_not_memoizable() {
        let (facts, _, _) = memo_facts(
            "function w() { global $g; $g = 1; return 2; }\n\
             function keep($v) { global $k; $k = $v; return 1; }\n\
             if (true) { function dyn() { return 1; } }\n\
             $g = 0; echo w(), keep(5), dyn();",
        );
        assert_eq!(facts.memo_site_count(), 0);
    }

    #[test]
    fn nondet_cacheable_near_miss_raises_the_lint() {
        let (facts, lints, _) = memo_facts(
            "function tok() { return rand(1, 100); }\n\
             echo tok(); echo tok();",
        );
        assert_eq!(facts.memo_site_count(), 0);
        let lines: Vec<String> = lints.iter().map(|l| l.to_string()).collect();
        assert_eq!(
            lines,
            vec![
                "[nondeterministic-cacheable] <main>: tok() is cache-shaped but \
                 calls rand/time; memoizing it would replay a stale draw"
            ],
            "deduped to one lint per scope+callee"
        );
    }

    #[test]
    fn purity_lattice_orders_and_joins() {
        assert!(Purity::Pure < Purity::RequestDet);
        assert!(Purity::RequestDet < Purity::NonDet);
        assert_eq!(Purity::Pure.join(Purity::NonDet), Purity::NonDet);
        assert_eq!(Purity::Pure.join(Purity::RequestDet), Purity::RequestDet);
        assert_eq!(Purity::RequestDet.name(), "request-det");
    }
}
