//! Region/lifetime analysis: which allocation sites provably die with the
//! request?
//!
//! The paper's heap-manager wins (§4.3) ride on PHP's request-scoped memory
//! lifetimes — almost everything a request allocates is garbage the moment
//! the response is sent. This pass makes that property *checkable per site*
//! over a three-point region lattice:
//!
//! ```text
//!   Transient ⊑ Request ⊏ CrossRequest
//! ```
//!
//! `Transient` values die within their statement (echo materializations,
//! concat temporaries), `Request` values die by end of request (locals,
//! callee frames, returned values consumed by request-scoped code), and
//! `CrossRequest` values may survive the request: stored into a `global`,
//! passed to a callee whose matching parameter is itself cross-request
//! (stored into a global the callee writes, forwarded onward, or returned
//! into a cross-request consumer — `$g = id($x)` poisons `$x` through
//! `id`'s return), swallowed by an `extract`-poisoned scope, or returned
//! into a cross-request consumer.
//! Only the `CrossRequest` point matters for allocation policy: a site is
//! **arena-safe** iff its value's region is below `CrossRequest`, because
//! the arena epoch spans the whole request — within-request escapes
//! (returns, plain stores, foreach) still die inside the epoch.
//!
//! The pass is flow-insensitive like [`crate::escape`], but *coarser on
//! purpose*: escape analysis asks "does the value outlive the expression?"
//! (for refcount elision) while this asks "does it outlive the request?"
//! (for memory placement). A variable can escape its statement and still be
//! arena-safe.
//!
//! Soundness posture: every over-approximation degrades toward
//! `CrossRequest`, which keeps a site on the free-list path — never
//! arena-corrupting. In particular an unsummarized callee
//! ([`CallerView::EMPTY`]) makes every argument cross-request, mirroring
//! the escape analysis' "missing summary ⇒ everything escapes" contract.
//!
//! Verdicts land in [`AnalysisFacts`] (per-site arena flags plus
//! per-function symbol-table verdicts) and each escaping site raises a
//! `[cross-request-escape]` lint, which `analyze --gate` turns into a CI
//! failure unless allowlisted.

use crate::cfg::{item_exprs, walk_exprs, Item, ScopeCfg};
use crate::knowledge::{consumes_args_transiently, is_builtin};
use crate::report::{Lint, LintKind};
use crate::summary::CallerView;
use php_interp::ast::{BinOp, Expr, LValue, Stmt};
use php_interp::AnalysisFacts;
use std::collections::{BTreeMap, BTreeSet};

/// The variables of one scope whose values may outlive the request.
#[derive(Debug, Default)]
pub struct CrossSet {
    /// `extract()` was seen: every lifetime in the scope is unprovable.
    pub all: bool,
    /// Individually cross-request variables.
    pub vars: BTreeSet<String>,
}

impl CrossSet {
    /// Whether `name`'s value may outlive the request.
    pub fn contains(&self, name: &str) -> bool {
        self.all || self.vars.contains(name)
    }
}

/// Whole-program region results: one [`CrossSet`] per scope (parallel to
/// the lowered scope list), the functions whose return value reaches a
/// cross-request consumer in some caller, and per-function parameter
/// cross-request vectors.
#[derive(Debug, Default)]
pub struct RegionInfo {
    /// Per-scope cross-request variable sets, in scope order.
    pub cross: Vec<CrossSet>,
    /// Functions whose returned value may be stored cross-request.
    pub ret_cross: BTreeSet<String>,
    /// Per function: which parameters' values may outlive the request —
    /// i.e. the parameter variable is in the function's own cross set. A
    /// call argument at such a position inherits cross-request-ness: the
    /// argument's value aliases the parameter (and, when the callee
    /// returns it, the call result).
    pub param_cross: BTreeMap<String, Vec<bool>>,
}

impl RegionInfo {
    /// May argument `i` of a call to `name` outlive the *request* (not
    /// merely the call)? With a non-opaque summary, the callee's own cross
    /// set answers: the argument aliases the callee's parameter, so it can
    /// outlive the request exactly when the parameter can — stored into a
    /// global the callee writes, forwarded to a retaining sub-callee, or
    /// returned into a cross-request consumer (`global $g; $g = id($x)`
    /// poisons `$x` through `id`'s return, even though `id` writes no
    /// globals). Unknown or opaque callees, and names the fixpoint has no
    /// row for, degrade to `true`; surplus arguments are discarded by the
    /// callee and answer `false`. Builtins never retain values across
    /// requests in this runtime (the regex cache clones pattern bytes
    /// rather than keeping the value); argument-returning builtins are
    /// handled by [`value_sources`] instead.
    pub fn arg_crosses_request(&self, view: &CallerView<'_>, name: &str, i: usize) -> bool {
        match view.summary(name) {
            Some(s) if !s.opaque_effects => self
                .param_cross
                .get(name)
                .is_none_or(|p| p.get(i).copied().unwrap_or(false)),
            _ => true,
        }
    }
}

/// Per-scope site statistics from [`commit_regions`].
#[derive(Debug, Default, Clone, Copy)]
pub struct RegionStats {
    /// Sites proven to die with the request.
    pub arena_safe_sites: usize,
    /// Sites that may outlive the request.
    pub cross_request_sites: usize,
}

/// The variables whose values an expression's result can alias: plain
/// variable reads, ternary branches, array-literal elements (the literal's
/// value holds them), indexed reads (the element shares the array's
/// storage), and arguments of builtins that can return an argument
/// (`max($a, $b)` yields one of the two unchanged). User-call results are
/// handled by the fixpoint instead — the seed pass poisons retained
/// arguments through [`RegionInfo::param_cross`] and [`call_roots`] feeds
/// `ret_cross` — so user calls contribute no variable roots here.
fn value_sources(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            match then {
                Some(t) => value_sources(t, out),
                None => value_sources(cond, out), // elvis reuses the condition value
            }
            value_sources(otherwise, out);
        }
        Expr::ArrayLit(items) => {
            for (_, v) in items {
                value_sources(v, out);
            }
        }
        Expr::Index { base, .. } => value_sources(base, out),
        Expr::Call { name, args } if is_builtin(name) && !consumes_args_transiently(name) => {
            for a in args {
                value_sources(a, out);
            }
        }
        _ => {}
    }
}

/// Function names whose return value an expression can yield — directly,
/// through ternary branches, out of array-literal elements and indexed
/// reads, or forwarded through a callee that retains the corresponding
/// argument (`$g = wrap(id($x))` can store `id`'s result when `wrap`
/// returns its parameter).
fn call_roots<'a>(e: &'a Expr, view: &CallerView<'_>, out: &mut BTreeSet<&'a str>) {
    match e {
        Expr::Call { name, args } => {
            out.insert(name);
            for (i, a) in args.iter().enumerate() {
                let forwards = if is_builtin(name) {
                    !consumes_args_transiently(name)
                } else {
                    view.arg_retained(name, i)
                };
                if forwards {
                    call_roots(a, view, out);
                }
            }
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            match then {
                Some(t) => call_roots(t, view, out),
                None => call_roots(cond, view, out),
            }
            call_roots(otherwise, view, out);
        }
        Expr::ArrayLit(items) => {
            for (_, v) in items {
                call_roots(v, view, out);
            }
        }
        Expr::Index { base, .. } => call_roots(base, view, out),
        _ => {}
    }
}

/// Computes the cross-request variable set of one scope under the current
/// fixpoint state: `info.ret_cross` says whether some caller stores this
/// function's result cross-request (making returned value sources
/// cross-request too), and `info.param_cross` refines which call arguments
/// the callees can carry past the request.
fn cross_request_vars(scope: &ScopeCfg<'_>, view: &CallerView<'_>, info: &RegionInfo) -> CrossSet {
    let returns_cross = info.ret_cross.contains(&scope.name);
    let mut cross = CrossSet {
        all: false,
        vars: scope.globals.clone(),
    };
    // Seed: extract poisoning and arguments whose values a callee can
    // carry past the request (see `RegionInfo::arg_crosses_request`).
    for block in &scope.cfg.blocks {
        for item in &block.items {
            for e in item_exprs(item) {
                walk_exprs(e, &mut |x| {
                    if let Expr::Call { name, args } = x {
                        if name == "extract" {
                            cross.all = true;
                        } else if !is_builtin(name) {
                            for (i, a) in args.iter().enumerate() {
                                if info.arg_crosses_request(view, name, i) {
                                    value_sources(a, &mut cross.vars);
                                }
                            }
                        }
                    }
                });
            }
        }
    }
    if cross.all {
        return cross;
    }
    // Backward closure: anything assigned into a cross-request holder (or
    // returned to a cross-request consumer, or iterated into a
    // cross-request binding) is itself cross-request.
    loop {
        let before = cross.vars.len();
        for block in &scope.cfg.blocks {
            for item in &block.items {
                match item {
                    Item::Stmt(Stmt::Assign { target, value }) => {
                        let t = match target {
                            LValue::Var(n) => n,
                            LValue::Index { var, .. } => var,
                        };
                        if cross.contains(t) {
                            value_sources(value, &mut cross.vars);
                        }
                    }
                    Item::Stmt(Stmt::Return(Some(e))) if returns_cross => {
                        value_sources(e, &mut cross.vars);
                    }
                    Item::ForeachBind(Stmt::Foreach {
                        key_var,
                        value_var,
                        array,
                        ..
                    }) if cross.contains(value_var)
                        || key_var.as_deref().is_some_and(|k| cross.contains(k)) =>
                    {
                        value_sources(array, &mut cross.vars);
                    }
                    _ => {}
                }
            }
        }
        if cross.vars.len() == before {
            return cross;
        }
    }
}

/// Computes cross-request sets for every scope, the set of functions
/// returning into cross-request consumers, and the per-function parameter
/// cross vectors, iterating the three to a joint fixpoint: a cross
/// assignment `$g = f()` makes `f` return-cross, which can grow `f`'s own
/// cross set, which can poison `f`'s parameters — making arguments at
/// `f`'s call sites cross-request in *their* scopes, and so on. All three
/// states only ever grow, so the iteration terminates.
pub fn analyze_regions(scopes: &[ScopeCfg<'_>], view: &CallerView<'_>) -> RegionInfo {
    let mut info = RegionInfo::default();
    // Optimistic seed rows so the fixpoint grows monotonically from ⊥; a
    // *missing* row means "unknown function" and degrades to cross.
    for s in scopes {
        if !s.is_main {
            info.param_cross
                .insert(s.name.clone(), vec![false; s.params.len()]);
        }
    }
    loop {
        let cross: Vec<CrossSet> = scopes
            .iter()
            .map(|s| cross_request_vars(s, view, &info))
            .collect();
        info.cross = cross;
        let mut changed = false;
        // Parameter verdicts follow directly from the new cross sets.
        for (scope, cross) in scopes.iter().zip(&info.cross) {
            if scope.is_main {
                continue;
            }
            let row: Vec<bool> = scope.params.iter().map(|p| cross.contains(p)).collect();
            let entry = info
                .param_cross
                .get_mut(&scope.name)
                .expect("param_cross row seeded for every function scope");
            if *entry != row {
                *entry = row;
                changed = true;
            }
        }
        // Return-cross discovery: any call whose result can flow into a
        // cross-request holder — a cross assignment target, the return of
        // an already-return-cross function, or a foreach whose bindings
        // are cross-request.
        let before = info.ret_cross.len();
        for (scope, cross) in scopes.iter().zip(&info.cross) {
            for block in &scope.cfg.blocks {
                for item in &block.items {
                    let (store_crosses, value) = match item {
                        Item::Stmt(Stmt::Assign { target, value }) => {
                            let t = match target {
                                LValue::Var(n) => n,
                                LValue::Index { var, .. } => var,
                            };
                            (cross.contains(t), value)
                        }
                        Item::Stmt(Stmt::Return(Some(e))) => {
                            (info.ret_cross.contains(&scope.name), e)
                        }
                        Item::ForeachBind(Stmt::Foreach {
                            key_var,
                            value_var,
                            array,
                            ..
                        }) => (
                            cross.contains(value_var)
                                || key_var.as_deref().is_some_and(|k| cross.contains(k)),
                            array,
                        ),
                        _ => continue,
                    };
                    if store_crosses {
                        let mut roots = BTreeSet::new();
                        call_roots(value, view, &mut roots);
                        info.ret_cross.extend(roots.into_iter().map(String::from));
                    }
                }
            }
        }
        changed |= info.ret_cross.len() > before;
        if !changed {
            return info;
        }
    }
}

/// One scope's region commit state.
struct RegionCommitter<'a, 'f> {
    scope: &'a ScopeCfg<'a>,
    info: &'a RegionInfo,
    cross: &'a CrossSet,
    returns_cross: bool,
    view: &'a CallerView<'a>,
    facts: &'f mut AnalysisFacts,
    lints: &'f mut Vec<Lint>,
    stats: RegionStats,
    /// Deduplicates identical lint messages within the scope.
    noted: BTreeSet<String>,
}

/// Reason attached to every site in an `extract`-poisoned scope.
const POISONED: &str = "extract() makes every lifetime in the scope unprovable";

impl RegionCommitter<'_, '_> {
    /// Records one site verdict: arena-safe (fact) or escaping (lint).
    fn site(
        &mut self,
        id_of: impl FnOnce(&mut AnalysisFacts) -> php_interp::NodeId,
        what: &str,
        esc: Option<&str>,
    ) {
        match esc {
            Some(reason) => {
                self.stats.cross_request_sites += 1;
                let message = format!("{what} may outlive the request: {reason}");
                if self.noted.insert(message.clone()) {
                    self.lints.push(Lint {
                        kind: LintKind::CrossRequestEscape,
                        scope: self.scope.name.clone(),
                        message,
                    });
                }
            }
            None => {
                let id = id_of(self.facts);
                self.facts.mark_arena_safe(id);
                self.stats.arena_safe_sites += 1;
            }
        }
    }

    /// Classifies every allocation site inside `e`, with `esc` carrying the
    /// escape reason of the surrounding context (a cross-request store or
    /// retained call argument), if any.
    fn classify(&mut self, e: &Expr, esc: Option<&str>) {
        let esc = if self.cross.all { Some(POISONED) } else { esc };
        match e {
            Expr::Bin { op, lhs, rhs } => {
                if *op == BinOp::Concat {
                    self.site(|f| f.intern_expr(e), "concatenated string", esc);
                }
                self.classify(lhs, esc);
                self.classify(rhs, esc);
            }
            Expr::ArrayLit(items) => {
                self.site(|f| f.intern_expr(e), "array literal", esc);
                for (k, v) in items {
                    if let Some(k) = k {
                        self.classify(k, esc);
                    }
                    self.classify(v, esc);
                }
            }
            Expr::Call { name, args } => {
                for (i, a) in args.iter().enumerate() {
                    let owned;
                    let arg_esc = match esc {
                        Some(r) => Some(r),
                        None if !is_builtin(name)
                            && self.info.arg_crosses_request(self.view, name, i) =>
                        {
                            owned =
                                format!("argument {i} of {name}() may be retained across requests");
                            Some(owned.as_str())
                        }
                        None => None,
                    };
                    self.classify(a, arg_esc);
                }
            }
            Expr::Index { base, key } => {
                self.classify(base, esc);
                self.classify(key, esc);
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                self.classify(cond, esc);
                if let Some(t) = then {
                    self.classify(t, esc);
                }
                self.classify(otherwise, esc);
            }
            Expr::Not(x) | Expr::Neg(x) => self.classify(x, esc),
            _ => {}
        }
    }

    fn visit_item(&mut self, item: &Item<'_>) {
        match item {
            // `echo` materializes each part as a transient string — the
            // canonical arena citizen; only poisoning can demote it.
            Item::Stmt(Stmt::Echo(parts)) => {
                for p in parts {
                    self.site(|f| f.intern_expr(p), "echoed string", None);
                    self.classify(p, None);
                }
            }
            Item::Stmt(s @ Stmt::Assign { target, value }) => {
                let tvar = match target {
                    LValue::Var(n) => n,
                    LValue::Index { var, .. } => var,
                };
                let owned;
                let esc = if self.cross.contains(tvar) && !self.cross.all {
                    owned = format!("stored into cross-request ${tvar}");
                    Some(owned.as_str())
                } else {
                    None
                };
                if let LValue::Index { key, .. } = target {
                    // `$a[k] = v` with `$a` unset autovivifies `$a`'s array
                    // descriptor: the descriptor's region is `$a`'s region.
                    self.site(|f| f.intern_stmt(s), "autovivified array", esc);
                    if let Some(k) = key {
                        self.classify(k, None);
                    }
                }
                self.classify(value, esc);
            }
            Item::Stmt(Stmt::Return(Some(e))) => {
                let esc = self
                    .returns_cross
                    .then_some("returned to a cross-request consumer");
                self.classify(e, esc);
            }
            Item::Stmt(Stmt::Expr(e)) => self.classify(e, None),
            Item::Cond(e) => self.classify(e, None),
            Item::ForeachEnter(Stmt::Foreach { array, .. }) => self.classify(array, None),
            _ => {}
        }
    }
}

/// Replays `scope` (the `idx`-th entry of the scope list `info` was solved
/// over) under its cross-request solution, marking arena-safe sites in
/// `facts` and raising `[cross-request-escape]` lints for the rest;
/// returns the site counts.
pub fn commit_regions(
    scope: &ScopeCfg<'_>,
    info: &RegionInfo,
    idx: usize,
    view: &CallerView<'_>,
    facts: &mut AnalysisFacts,
    lints: &mut Vec<Lint>,
) -> RegionStats {
    let mut c = RegionCommitter {
        scope,
        info,
        cross: &info.cross[idx],
        returns_cross: info.ret_cross.contains(&scope.name),
        view,
        facts,
        lints,
        stats: RegionStats::default(),
        noted: BTreeSet::new(),
    };
    for block in &scope.cfg.blocks {
        for item in &block.items {
            c.visit_item(item);
        }
    }
    c.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::cfg::lower_program;
    use crate::summary::compute_summaries;
    use php_interp::parse;

    fn regions_of(src: &str) -> (Vec<String>, RegionInfo) {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let cg = CallGraph::build(&scopes);
        let sums = compute_summaries(&scopes, &cg);
        let view = CallerView::of(&sums);
        let info = analyze_regions(&scopes, &view);
        (scopes.iter().map(|s| s.name.clone()).collect(), info)
    }

    fn main_cross(src: &str) -> CrossSet {
        let (names, mut info) = regions_of(src);
        let i = names.iter().position(|n| n == "<main>").unwrap();
        info.cross.swap_remove(i)
    }

    #[test]
    fn locals_and_transients_stay_request_scoped() {
        let c = main_cross("$t = 'x' . 'y'; $u = $t; echo $u; $a = array(1);");
        assert!(!c.all);
        assert!(c.vars.is_empty(), "{c:?}");
    }

    #[test]
    fn globals_and_their_sources_are_cross_request() {
        let c = main_cross("global $g; $tmp = 'a' . 'b'; $g = $tmp; $x = 1;");
        assert!(c.contains("g"), "global binding");
        assert!(c.contains("tmp"), "flows into the global (closure)");
        assert!(!c.contains("x"));
    }

    #[test]
    fn extract_poisons_every_lifetime() {
        let c = main_cross("extract($req); $t = 'x';");
        assert!(c.all);
        assert!(c.contains("anything"));
    }

    #[test]
    fn unknown_callee_args_cross_summarized_transient_args_do_not() {
        // `t` only echoes its argument; `k` stores it into a global.
        let c = main_cross(
            "function t($a) { echo $a; }\n\
             function k($v) { global $keep; $keep = $v; }\n\
             $x = 'x'; t($x); $y = 'y'; k($y); unknown_fn($z);",
        );
        assert!(!c.contains("x"), "transient arg of summarized callee");
        assert!(c.contains("y"), "retained by a global-writing callee");
        assert!(c.contains("z"), "unknown callee: assume the worst");
    }

    #[test]
    fn return_into_cross_consumer_propagates_into_the_callee() {
        let (names, info) = regions_of(
            "function mk() { $r = array(1); return $r; }\n\
             global $cache; $cache = mk();",
        );
        assert!(info.ret_cross.contains("mk"));
        let i = names.iter().position(|n| n == "mk").unwrap();
        assert!(
            info.cross[i].contains("r"),
            "returned local is cross-request in a return-cross function"
        );
    }

    #[test]
    fn identity_return_into_global_poisons_the_argument() {
        // `id` writes no globals, but returns its argument — storing the
        // result into a global keeps $x alive past the request.
        let c = main_cross(
            "function id($v) { return $v; }\n\
             global $g; $x = 'a' . 'b'; $g = id($x);",
        );
        assert!(c.contains("x"), "argument escapes through id's return");
    }

    #[test]
    fn retained_return_chain_poisons_through_nested_calls() {
        let c = main_cross(
            "function id($v) { return $v; }\n\
             function wrap($p) { return $p; }\n\
             global $g; $x = 'a' . 'b'; $g = wrap(id($x));",
        );
        assert!(c.contains("x"), "two retained returns deep");
    }

    #[test]
    fn frame_local_stash_keeps_argument_request_scoped() {
        // Retention into the callee's own frame is only Request-level: the
        // frame dies with the request, so the argument stays arena-safe.
        let c = main_cross(
            "function stash($v) { $l = $v; return 1; }\n\
             $x = 'a' . 'b'; stash($x);",
        );
        assert!(
            !c.contains("x"),
            "frame-local retention dies with the request"
        );
    }

    #[test]
    fn array_literal_flow_into_global_poisons_elements() {
        let c = main_cross("global $g; $x = 'a' . 'b'; $a = array($x); $g = $a;");
        assert!(c.contains("a"), "flows into the global");
        assert!(c.contains("x"), "element of a cross-request array");
    }

    #[test]
    fn indexed_read_into_global_poisons_the_array() {
        // `$g = $a[0]` shares $a's element storage with the global.
        let c = main_cross("global $g; $g = $a[0];");
        assert!(c.contains("a"));
    }

    #[test]
    fn builtin_returning_an_argument_forwards_cross_request() {
        // `max` can yield either argument unchanged.
        let c = main_cross("global $g; $g = max($x, $y);");
        assert!(c.contains("x") && c.contains("y"), "{c:?}");
    }

    #[test]
    fn foreach_consumed_call_result_marks_ret_cross() {
        let (names, info) = regions_of(
            "function mk() { $r = array(1); return $r; }\n\
             global $g; foreach (mk() as $v) { $g[0] = $v; }",
        );
        assert!(info.ret_cross.contains("mk"), "{:?}", info.ret_cross);
        let i = names.iter().position(|n| n == "mk").unwrap();
        assert!(info.cross[i].contains("r"));
    }

    fn commit(src: &str) -> (Vec<Lint>, RegionStats, php_interp::AnalysisFacts) {
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let cg = CallGraph::build(&scopes);
        let sums = compute_summaries(&scopes, &cg);
        let view = CallerView::of(&sums);
        let info = analyze_regions(&scopes, &view);
        let mut facts = php_interp::AnalysisFacts::new();
        let mut lints = Vec::new();
        let mut total = RegionStats::default();
        for (i, scope) in scopes.iter().enumerate() {
            let s = commit_regions(scope, &info, i, &view, &mut facts, &mut lints);
            total.arena_safe_sites += s.arena_safe_sites;
            total.cross_request_sites += s.cross_request_sites;
        }
        (lints, total, facts)
    }

    #[test]
    fn clean_code_is_fully_arena_safe() {
        let (lints, stats, _) = commit("$s = 'a' . 'b'; echo $s; $a = array(1, 2); $a[] = 3;");
        assert!(lints.is_empty(), "{lints:?}");
        assert!(stats.arena_safe_sites >= 3, "{stats:?}");
        assert_eq!(stats.cross_request_sites, 0);
    }

    #[test]
    fn cross_request_stores_lint_and_stay_off_the_arena() {
        let (lints, stats, _) = commit("global $g; $g = 'a' . 'b';");
        assert_eq!(stats.cross_request_sites, 1, "{stats:?}");
        assert_eq!(
            lints.iter().map(ToString::to_string).collect::<Vec<_>>(),
            vec![
                "[cross-request-escape] <main>: concatenated string may \
                 outlive the request: stored into cross-request $g"
            ]
        );
    }

    #[test]
    fn identity_return_site_stays_off_the_arena() {
        // The allocation behind $x must keep the free-list path: its value
        // reaches $g through id's return, so reclaiming it at the epoch
        // reset would free memory still reachable cross-request.
        let (lints, stats, _) = commit(
            "function id($v) { return $v; }\n\
             global $g; $x = 'a' . 'b'; $g = id($x);",
        );
        assert!(stats.cross_request_sites >= 1, "{stats:?}");
        assert!(
            lints
                .iter()
                .any(|l| l.to_string().contains("stored into cross-request $x")),
            "{lints:?}"
        );
    }

    #[test]
    fn verdicts_land_on_the_exact_nodes() {
        let src = "$safe = 'a' . 'b'; global $g; $g = 'c' . 'd';";
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let view = CallerView::EMPTY;
        let info = analyze_regions(&scopes, &view);
        let mut facts = php_interp::AnalysisFacts::new();
        let mut lints = Vec::new();
        commit_regions(&scopes[0], &info, 0, &view, &mut facts, &mut lints);
        let php_interp::ast::Stmt::Assign { value: safe, .. } = &prog.stmts[0] else {
            panic!()
        };
        let php_interp::ast::Stmt::Assign {
            value: escaping, ..
        } = &prog.stmts[2]
        else {
            panic!()
        };
        assert!(facts.arena_safe_expr(safe));
        assert!(!facts.arena_safe_expr(escaping));
    }

    #[test]
    fn empty_view_degrades_user_call_args_to_cross_request() {
        // Same source, intraprocedural view: the summary is missing, so the
        // argument must be assumed retained across requests (sound default).
        let src = "function t($a) { echo $a; } t(array(1));";
        let prog = parse(src).unwrap();
        let scopes = lower_program(&prog);
        let info = analyze_regions(&scopes, &CallerView::EMPTY);
        let mut facts = php_interp::AnalysisFacts::new();
        let mut lints = Vec::new();
        let stats = commit_regions(
            &scopes[0],
            &info,
            0,
            &CallerView::EMPTY,
            &mut facts,
            &mut lints,
        );
        assert_eq!(stats.cross_request_sites, 1, "{stats:?}");
        assert_eq!(lints.len(), 1);
        assert!(lints[0].to_string().contains("argument 0 of t()"));
    }
}
