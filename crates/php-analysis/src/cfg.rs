//! Lowering of the mini-PHP AST into per-scope control-flow graphs.
//!
//! Each scope — the top-level script (`<main>`) and every function body —
//! becomes one [`Cfg`] of basic blocks. Blocks hold straight-line [`Item`]s
//! (statements, branch conditions, `foreach` bindings) that reference AST
//! nodes by address; the AST itself is never copied or mutated, which is what
//! lets [`AnalysisFacts`](php_interp::AnalysisFacts) key results by node
//! identity later.

use php_interp::ast::{Expr, FuncDef, Program, Stmt};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// One step of straight-line work inside a basic block.
#[derive(Debug, Clone, Copy)]
pub enum Item<'a> {
    /// A non-branching statement (`Expr`, `Assign`, `Echo`, `Return`,
    /// `Global`). `Return` always ends its block.
    Stmt(&'a Stmt),
    /// A branch or loop condition, evaluated at the end of its block; the
    /// block then has two successors (taken, not taken).
    Cond(&'a Expr),
    /// Evaluation of a `foreach` statement's array expression, once at loop
    /// entry. Carries the whole `Stmt::Foreach`.
    ForeachEnter(&'a Stmt),
    /// The per-iteration key/value binding of a `foreach`, at the start of
    /// the loop body. Carries the whole `Stmt::Foreach`.
    ForeachBind(&'a Stmt),
}

/// A basic block: straight-line items plus successor edges.
#[derive(Debug, Default)]
pub struct Block<'a> {
    /// Items in execution order.
    pub items: Vec<Item<'a>>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
}

/// A per-scope control-flow graph.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All blocks; ids index into this vector.
    pub blocks: Vec<Block<'a>>,
    /// The entry block.
    pub entry: BlockId,
    /// The single synthetic exit block (every `return` and the fall-off end
    /// of the scope lead here).
    pub exit: BlockId,
}

impl Cfg<'_> {
    /// Successor lists, one per block, for the generic solver.
    pub fn succ_lists(&self) -> Vec<Vec<usize>> {
        self.blocks.iter().map(|b| b.succs.clone()).collect()
    }
}

/// A lowered scope: `<main>` or one user function.
#[derive(Debug)]
pub struct ScopeCfg<'a> {
    /// `"<main>"` or the function name.
    pub name: String,
    /// Parameter names (empty for `<main>`).
    pub params: Vec<String>,
    /// Variables declared `global` anywhere in this scope.
    pub globals: BTreeSet<String>,
    /// Whether this is the top-level script scope.
    pub is_main: bool,
    /// The control-flow graph.
    pub cfg: Cfg<'a>,
}

struct Lowerer<'a> {
    blocks: Vec<Block<'a>>,
    exit: BlockId,
    /// Stack of `(continue_target, break_target)` for enclosing loops.
    loops: Vec<(BlockId, BlockId)>,
    globals: BTreeSet<String>,
    funcs: Vec<&'a FuncDef>,
}

impl<'a> Lowerer<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lowers `stmts` starting in block `cur`; returns the block where
    /// control continues afterwards.
    fn lower(&mut self, mut cur: BlockId, stmts: &'a [Stmt]) -> BlockId {
        for s in stmts {
            match s {
                Stmt::Expr(_) | Stmt::Assign { .. } | Stmt::Echo(_) => {
                    self.blocks[cur].items.push(Item::Stmt(s));
                }
                Stmt::Global(names) => {
                    self.globals.extend(names.iter().cloned());
                    self.blocks[cur].items.push(Item::Stmt(s));
                }
                Stmt::FuncDef(f) => {
                    self.funcs.push(f);
                }
                Stmt::Return(_) => {
                    self.blocks[cur].items.push(Item::Stmt(s));
                    self.edge(cur, self.exit);
                    // Anything after a return is unreachable: give it a
                    // fresh block with no predecessors.
                    cur = self.new_block();
                }
                Stmt::Break => {
                    if let Some(&(_, brk)) = self.loops.last() {
                        self.edge(cur, brk);
                    }
                    cur = self.new_block();
                }
                Stmt::Continue => {
                    if let Some(&(cont, _)) = self.loops.last() {
                        self.edge(cur, cont);
                    }
                    cur = self.new_block();
                }
                Stmt::If {
                    cond,
                    then,
                    otherwise,
                } => {
                    self.blocks[cur].items.push(Item::Cond(cond));
                    let t = self.new_block();
                    let e = self.new_block();
                    self.edge(cur, t);
                    self.edge(cur, e);
                    let t_end = self.lower(t, then);
                    let e_end = self.lower(e, otherwise);
                    let join = self.new_block();
                    self.edge(t_end, join);
                    self.edge(e_end, join);
                    cur = join;
                }
                Stmt::While { cond, body } => {
                    let header = self.new_block();
                    self.edge(cur, header);
                    self.blocks[header].items.push(Item::Cond(cond));
                    let b = self.new_block();
                    let after = self.new_block();
                    self.edge(header, b);
                    self.edge(header, after);
                    self.loops.push((header, after));
                    let b_end = self.lower(b, body);
                    self.loops.pop();
                    self.edge(b_end, header);
                    cur = after;
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    cur = self.lower(cur, std::slice::from_ref(init));
                    let header = self.new_block();
                    self.edge(cur, header);
                    self.blocks[header].items.push(Item::Cond(cond));
                    let b = self.new_block();
                    let after = self.new_block();
                    let stepb = self.new_block();
                    self.edge(header, b);
                    self.edge(header, after);
                    // `continue` re-runs the step, not the condition.
                    self.loops.push((stepb, after));
                    let b_end = self.lower(b, body);
                    self.loops.pop();
                    self.edge(b_end, stepb);
                    let step_end = self.lower(stepb, std::slice::from_ref(step));
                    self.edge(step_end, header);
                    cur = after;
                }
                Stmt::Foreach { body, .. } => {
                    self.blocks[cur].items.push(Item::ForeachEnter(s));
                    let header = self.new_block();
                    self.edge(cur, header);
                    let b = self.new_block();
                    let after = self.new_block();
                    self.edge(header, b);
                    self.edge(header, after);
                    // The binding happens only when the body is entered.
                    self.blocks[b].items.push(Item::ForeachBind(s));
                    self.loops.push((header, after));
                    let b_end = self.lower(b, body);
                    self.loops.pop();
                    self.edge(b_end, header);
                    cur = after;
                }
            }
        }
        cur
    }
}

fn lower_scope<'a>(
    name: String,
    params: Vec<String>,
    stmts: &'a [Stmt],
    is_main: bool,
) -> (ScopeCfg<'a>, Vec<&'a FuncDef>) {
    let mut lw = Lowerer {
        blocks: vec![Block::default(), Block::default()],
        exit: 1,
        loops: Vec::new(),
        globals: BTreeSet::new(),
        funcs: Vec::new(),
    };
    let end = lw.lower(0, stmts);
    lw.edge(end, lw.exit);
    let scope = ScopeCfg {
        name,
        params,
        globals: lw.globals,
        is_main,
        cfg: Cfg {
            blocks: lw.blocks,
            entry: 0,
            exit: 1,
        },
    };
    (scope, lw.funcs)
}

/// Lowers a whole program into scopes: `<main>` first, then every function
/// definition found anywhere (including those nested inside other bodies).
pub fn lower_program(prog: &Program) -> Vec<ScopeCfg<'_>> {
    lower_program_with(prog, &[])
}

/// Like [`lower_program`], but any discovered function whose name appears in
/// `shared` is lowered from the shared instance's body instead of the
/// program's own definition. Use this when the interpreter will execute
/// pre-registered shared definitions
/// ([`Interp::predefine_funcs`](php_interp::Interp::predefine_funcs)), so the
/// node identities the facts are keyed by match what actually runs.
pub fn lower_program_with<'a>(prog: &'a Program, shared: &'a [Arc<FuncDef>]) -> Vec<ScopeCfg<'a>> {
    let overrides: BTreeMap<&str, &FuncDef> =
        shared.iter().map(|f| (f.name.as_str(), &**f)).collect();
    let (main, mut pending) = lower_scope("<main>".into(), Vec::new(), &prog.stmts, true);
    let mut out = vec![main];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    while let Some(f) = pending.pop() {
        let f = overrides.get(f.name.as_str()).copied().unwrap_or(f);
        if !seen.insert(f.name.clone()) {
            continue;
        }
        let (scope, nested) = lower_scope(f.name.clone(), f.params.clone(), &f.body, false);
        pending.extend(nested);
        out.push(scope);
    }
    out
}

/// Visits `e` and every sub-expression, pre-order.
pub fn walk_exprs<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Index { base, key } => {
            walk_exprs(base, f);
            walk_exprs(key, f);
        }
        Expr::ArrayLit(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    walk_exprs(k, f);
                }
                walk_exprs(v, f);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Bin { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            walk_exprs(cond, f);
            if let Some(t) = then {
                walk_exprs(t, f);
            }
            walk_exprs(otherwise, f);
        }
        Expr::Not(x) | Expr::Neg(x) => walk_exprs(x, f),
        _ => {}
    }
}

/// The top-level expressions an item evaluates, in evaluation order.
pub fn item_exprs<'a>(item: &Item<'a>) -> Vec<&'a Expr> {
    use php_interp::ast::LValue;
    match item {
        Item::Stmt(Stmt::Expr(e)) => vec![e],
        Item::Stmt(Stmt::Assign { target, value }) => {
            let mut out = Vec::new();
            if let LValue::Index { key: Some(k), .. } = target {
                out.push(k);
            }
            out.push(value);
            out
        }
        Item::Stmt(Stmt::Echo(es)) => es.iter().collect(),
        Item::Stmt(Stmt::Return(Some(e))) => vec![e],
        Item::Cond(e) => vec![e],
        Item::ForeachEnter(Stmt::Foreach { array, .. }) => vec![array],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_interp::parse;

    fn scopes(src: &str) -> Vec<(String, usize)> {
        let prog = parse(src).unwrap();
        let lowered = lower_program(&prog);
        // Leak so the borrow can outlive — tests only need counts.
        lowered
            .iter()
            .map(|s| (s.name.clone(), s.cfg.blocks.len()))
            .collect()
    }

    #[test]
    fn straight_line_is_two_blocks() {
        // entry + exit.
        assert_eq!(scopes("$a = 1; echo $a;"), vec![("<main>".into(), 2)]);
    }

    #[test]
    fn if_else_shape() {
        let prog = parse("if ($c) { $a = 1; } else { $a = 2; } echo $a;").unwrap();
        let lowered = lower_program(&prog);
        let cfg = &lowered[0].cfg;
        // entry, exit, then, else, join.
        assert_eq!(cfg.blocks.len(), 5);
        // Entry ends with the condition and branches two ways.
        assert!(matches!(
            cfg.blocks[cfg.entry].items.last(),
            Some(Item::Cond(_))
        ));
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        // Both branches meet at the join, which flows to exit.
        let [t, e] = cfg.blocks[cfg.entry].succs[..] else {
            panic!()
        };
        assert_eq!(cfg.blocks[t].succs, cfg.blocks[e].succs);
        let join = cfg.blocks[t].succs[0];
        assert_eq!(cfg.blocks[join].succs, vec![cfg.exit]);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let prog = parse("while ($c) { $i = $i + 1; }").unwrap();
        let lowered = lower_program(&prog);
        let cfg = &lowered[0].cfg;
        // Find the header: the block holding the condition.
        let header = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.items.first(), Some(Item::Cond(_))))
            .unwrap();
        let body = cfg.blocks[header].succs[0];
        assert!(
            cfg.blocks[body].succs.contains(&header),
            "loop body must branch back to the header"
        );
    }

    #[test]
    fn break_exits_the_loop() {
        let prog = parse("while (true) { break; } echo 'x';").unwrap();
        let lowered = lower_program(&prog);
        let cfg = &lowered[0].cfg;
        let header = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.items.first(), Some(Item::Cond(_))))
            .unwrap();
        let [body, after] = cfg.blocks[header].succs[..] else {
            panic!()
        };
        // The body's flow (via break) reaches the after-loop block without
        // going back through the header.
        assert!(cfg.blocks[body].succs.contains(&after));
    }

    #[test]
    fn return_ends_the_block() {
        let prog = parse("function f() { return 1; echo 'dead'; }").unwrap();
        let lowered = lower_program(&prog);
        let f = lowered.iter().find(|s| s.name == "f").unwrap();
        // The entry block ends at the return; the trailing echo lands in a
        // block with no predecessors.
        let entry = &f.cfg.blocks[f.cfg.entry];
        assert_eq!(entry.succs, vec![f.cfg.exit]);
        assert!(matches!(
            entry.items.last(),
            Some(Item::Stmt(Stmt::Return(_)))
        ));
    }

    #[test]
    fn functions_become_their_own_scopes() {
        let names: Vec<String> = {
            let prog = parse("function a() { function b() {} } $x = 1;").unwrap();
            lower_program(&prog)
                .iter()
                .map(|s| s.name.clone())
                .collect()
        };
        assert!(names.contains(&"<main>".to_string()));
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"b".to_string()));
    }
}
