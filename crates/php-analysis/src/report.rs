//! Human-readable results: per-scope statistics and lint diagnostics.

use std::fmt;

/// The diagnostics the lint passes produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A variable is read on a path where it was never assigned.
    UseBeforeAssign,
    /// A value assigned to a variable is never read.
    DeadStore,
    /// An `is_*` type guard whose outcome is statically known.
    AlwaysTrueGuard,
    /// A branch or loop condition that folds to a constant.
    ConstantCondition,
    /// Unsanitized request input reaches an echo/regex/hash-table sink
    /// (see [`crate::taint`]).
    TaintedSink,
    /// An allocation site whose value may outlive the request (reaches a
    /// global, a cross-request consumer, or an `extract`-poisoned scope) —
    /// excluded from arena allocation (see [`crate::region`]).
    CrossRequestEscape,
    /// A call whose callee is cache-shaped (write-free, non-escaping
    /// arguments) but depends on `rand`/`time`: memoizing it would replay a
    /// stale draw and change program output (see [`crate::effects`]).
    NondeterministicCacheable,
}

impl LintKind {
    /// Every lint kind, in declaration order — the single registry the gate
    /// tooling (`analyze --gate`, `serve::LintGate`, the allowlist parser)
    /// resolves names against.
    pub const ALL: [LintKind; 7] = [
        LintKind::UseBeforeAssign,
        LintKind::DeadStore,
        LintKind::AlwaysTrueGuard,
        LintKind::ConstantCondition,
        LintKind::TaintedSink,
        LintKind::CrossRequestEscape,
        LintKind::NondeterministicCacheable,
    ];

    /// The stable kebab-case name, as printed inside `[...]` in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::UseBeforeAssign => "use-before-assign",
            LintKind::DeadStore => "dead-store",
            LintKind::AlwaysTrueGuard => "type-guard",
            LintKind::ConstantCondition => "constant-condition",
            LintKind::TaintedSink => "tainted-sink",
            LintKind::CrossRequestEscape => "cross-request-escape",
            LintKind::NondeterministicCacheable => "nondeterministic-cacheable",
        }
    }

    /// Resolves a kind from its [`LintKind::name`].
    pub fn from_name(name: &str) -> Option<LintKind> {
        LintKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses allowlist text (`scripts/taint-allowlist.txt` format): one
/// substring pattern per line, blank lines and `#` comments ignored. A
/// pattern beginning with `[kind]` must name a registered [`LintKind`] —
/// a typoed kind would otherwise silently never match anything and the gate
/// would reject the lint it was meant to excuse.
pub fn parse_allowlist(text: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let kind = rest.split(']').next().unwrap_or("");
            if LintKind::from_name(kind).is_none() {
                return Err(format!(
                    "allowlist line {}: unknown lint kind [{kind}] (known: {})",
                    i + 1,
                    LintKind::ALL.map(LintKind::name).join(", ")
                ));
            }
        }
        out.push(line.to_string());
    }
    Ok(out)
}

/// One diagnostic, attributed to the scope it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Which lint fired.
    pub kind: LintKind,
    /// `"<main>"` or the function name.
    pub scope: String,
    /// What happened, mentioning the variable or expression involved.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.scope, self.message)
    }
}

/// Per-scope analysis statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeReport {
    /// `"<main>"` or the function name.
    pub name: String,
    /// Basic blocks in the scope's CFG.
    pub blocks: usize,
    /// `BinOp` nodes seen.
    pub bin_ops: usize,
    /// Operand slots (two per `BinOp`).
    pub operand_slots: usize,
    /// Operand slots whose type was proven.
    pub typed_operands: usize,
    /// Variable reads whose refcount increment is elidable.
    pub rc_elided_reads: usize,
    /// Stores (assignments / foreach bindings) whose refcount pair is
    /// elidable.
    pub rc_elided_stores: usize,
    /// Array accesses with a proven constant-string key.
    pub const_str_sites: usize,
    /// Array appends proven to insert a fresh integer key.
    pub int_append_sites: usize,
    /// User-call sites resolved through an interprocedural summary.
    pub summarized_calls: usize,
    /// `preg_*` sites whose constant pattern was compiled at analysis time.
    pub preg_precompiled: usize,
    /// Allocation sites proven to die with the request (arena-eligible).
    pub arena_safe_sites: usize,
    /// Allocation sites that may outlive the request (free-list path).
    pub cross_request_sites: usize,
    /// Call sites the effect analysis proved memoizable across requests.
    pub memo_sites: usize,
}

impl ScopeReport {
    /// Fraction of `BinOp` operand slots with a proven type, in percent.
    pub fn type_coverage_pct(&self) -> f64 {
        if self.operand_slots == 0 {
            100.0
        } else {
            100.0 * self.typed_operands as f64 / self.operand_slots as f64
        }
    }
}

impl fmt::Display for ScopeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} blocks={:<3} type-coverage={:>5.1}% ({}/{} operands) \
             rc-elide reads={} stores={} keys const-str={} int-append={} \
             arena safe={} escaping={} memo={}",
            self.name,
            self.blocks,
            self.type_coverage_pct(),
            self.typed_operands,
            self.operand_slots,
            self.rc_elided_reads,
            self.rc_elided_stores,
            self.const_str_sites,
            self.int_append_sites,
            self.arena_safe_sites,
            self.cross_request_sites,
            self.memo_sites,
        )
    }
}

/// The whole program's report: one entry per scope plus all lints.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-scope statistics, `<main>` first.
    pub scopes: Vec<ScopeReport>,
    /// All diagnostics, in discovery order.
    pub lints: Vec<Lint>,
    /// Per-function effect summaries (empty when the interprocedural
    /// pipeline is off), for the `analyze` binary's effect table.
    pub effects: Vec<crate::effects::FuncEffect>,
}

impl Report {
    /// Total proven operand slots across scopes.
    pub fn typed_operands(&self) -> usize {
        self.scopes.iter().map(|s| s.typed_operands).sum()
    }

    /// Total elidable refcount sites (reads + stores) across scopes.
    pub fn rc_elided_sites(&self) -> usize {
        self.scopes
            .iter()
            .map(|s| s.rc_elided_reads + s.rc_elided_stores)
            .sum()
    }

    /// Total call sites resolved through a function summary.
    pub fn summarized_calls(&self) -> usize {
        self.scopes.iter().map(|s| s.summarized_calls).sum()
    }

    /// Total `preg_*` patterns compiled at analysis time.
    pub fn preg_precompiled(&self) -> usize {
        self.scopes.iter().map(|s| s.preg_precompiled).sum()
    }

    /// Total arena-safe allocation sites across scopes.
    pub fn arena_safe_sites(&self) -> usize {
        self.scopes.iter().map(|s| s.arena_safe_sites).sum()
    }

    /// Total cross-request-escaping allocation sites across scopes.
    pub fn cross_request_sites(&self) -> usize {
        self.scopes.iter().map(|s| s.cross_request_sites).sum()
    }

    /// Total proven-memoizable call sites across scopes.
    pub fn memo_sites(&self) -> usize {
        self.scopes.iter().map(|s| s.memo_sites).sum()
    }

    /// Lints of one kind.
    pub fn lint_count(&self, kind: LintKind) -> usize {
        self.lints.iter().filter(|l| l.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_every_name() {
        for kind in LintKind::ALL {
            assert_eq!(LintKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(LintKind::from_name("no-such-lint"), None);
    }

    #[test]
    fn allowlist_parser_keeps_patterns_and_validates_kinds() {
        let text = "# comment\n\n[tainted-sink] <main>: echo sink ($q)\nplain substring\n";
        let pats = parse_allowlist(text).unwrap();
        assert_eq!(
            pats,
            vec![
                "[tainted-sink] <main>: echo sink ($q)".to_string(),
                "plain substring".to_string(),
            ]
        );
        let err = parse_allowlist("[taint-sink] typoed kind").unwrap_err();
        assert!(err.contains("unknown lint kind"), "{err}");
        assert!(err.contains("tainted-sink"), "lists known names: {err}");
    }
}
