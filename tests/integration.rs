//! Cross-crate integration tests: full workloads through the runtime,
//! interpreter, accelerators, and accounting.

use phpaccel::core::{compare, ExecMode, MachineConfig, PhpMachine};
use phpaccel::interp::Interp;
use phpaccel::runtime::array::ArrayKey;
use phpaccel::runtime::value::PhpValue;
use phpaccel::runtime::Category;
use phpaccel::uarch::EnergyModel;
use phpaccel::workloads::{AppKind, LoadGen};

fn small_load() -> LoadGen {
    LoadGen {
        warmup: 6,
        measured: 18,
        context_switch_every: 7,
    }
}

#[test]
fn every_app_runs_in_both_modes_without_leaks() {
    for kind in [
        AppKind::WordPress,
        AppKind::Drupal,
        AppKind::MediaWiki,
        AppKind::SpecWebBanking,
        AppKind::SpecWebEcommerce,
    ] {
        for mode in [ExecMode::Baseline, ExecMode::Specialized] {
            let mut app = kind.build(9);
            let mut m = PhpMachine::new(mode, MachineConfig::default());
            let summary = small_load().run(app.as_mut(), &mut m);
            assert!(summary.total_uops > 0, "{kind:?} {mode:?} did no work");
            let live = m.ctx().with_allocator(|a| a.live_block_count());
            assert_eq!(live, 0, "{kind:?} {mode:?} leaked {live} blocks");
        }
    }
}

#[test]
fn figure14_ordering_holds_for_all_apps() {
    let energy = EnergyModel::default();
    let mut improvements = Vec::new();
    for kind in AppKind::PHP_APPS {
        let cfg = MachineConfig::default();
        let mut base_app = kind.build(5);
        let mut spec_app = kind.build(5);
        let mut base = PhpMachine::new(ExecMode::Baseline, cfg.clone());
        let mut spec = PhpMachine::new(ExecMode::Specialized, cfg);
        small_load().run(base_app.as_mut(), &mut base);
        small_load().run(spec_app.as_mut(), &mut spec);
        let cmp = compare(kind.label(), &base, &spec, &energy);
        assert!(
            cmp.normalized_priors() < 1.0,
            "{kind:?}: priors should help"
        );
        assert!(
            cmp.normalized_specialized() < cmp.normalized_priors(),
            "{kind:?}: accelerators should help beyond priors"
        );
        assert!(cmp.energy_saving > 0.0, "{kind:?}: energy should drop");
        improvements.push((kind, cmp.improvement_over_priors()));
    }
    // Drupal benefits least (paper Figure 14).
    let drupal = improvements
        .iter()
        .find(|(k, _)| *k == AppKind::Drupal)
        .unwrap()
        .1;
    assert!(
        improvements.iter().all(|&(_, v)| drupal <= v + 1e-9),
        "Drupal should benefit least: {improvements:?}"
    );
}

#[test]
fn specialized_outputs_match_baseline_through_interpreter() {
    let script = r#"
        function summarize($post) {
            $s = strtoupper(substr($post['body'], 0, 20));
            $count = 0;
            foreach ($post['tags'] as $t) { $count = $count + 1; }
            return $s . '|' . $count . '|' . htmlspecialchars($post['title']);
        }
        $post = array(
            'title' => 'A & B <test>',
            'body' => "it's a long body with plenty of words in it",
            'tags' => array('x', 'y', 'z'),
        );
        echo summarize($post);
        echo preg_replace('/o/', '0', 'foo boo');
    "#;
    let run = |mut m: PhpMachine| {
        let mut i = Interp::new(&mut m);
        i.run(script).unwrap();
        String::from_utf8_lossy(i.output()).into_owned()
    };
    let b = run(PhpMachine::baseline());
    let s = run(PhpMachine::specialized());
    assert_eq!(b, s);
    assert!(b.contains("A &amp; B &lt;test&gt;"));
    assert!(b.contains("f00 b00"));
}

#[test]
fn context_switches_preserve_correctness() {
    let mut m = PhpMachine::specialized();
    let mut arr = m.new_array();
    for i in 0..30 {
        m.array_set(
            &mut arr,
            ArrayKey::from(format!("k{i}")),
            PhpValue::from(i as i64),
        );
    }
    let blocks: Vec<_> = (0..10).map(|_| m.alloc(64)).collect();
    m.context_switch();
    // All data still reachable afterwards.
    for i in 0..30 {
        let v = m.array_get(&arr, &ArrayKey::from(format!("k{i}"))).unwrap();
        assert!(v.loose_eq(&PhpValue::from(i as i64)));
    }
    for b in blocks {
        m.free(b);
    }
    m.end_request();
    assert_eq!(m.ctx().with_allocator(|a| a.live_block_count()), 0);
}

#[test]
fn profiler_categories_cover_the_paper_inventory() {
    let mut app = AppKind::WordPress.build(4);
    let mut m = PhpMachine::baseline();
    small_load().run(app.as_mut(), &mut m);
    let cats = m.ctx().profiler().category_breakdown();
    for cat in Category::ALL {
        assert!(
            cats.get(&cat).copied().unwrap_or(0) > 0,
            "category {cat:?} unexercised"
        );
    }
}

#[test]
fn flat_profile_property_of_php_apps() {
    let mut app = AppKind::MediaWiki.build(8);
    let mut m = PhpMachine::baseline();
    LoadGen {
        warmup: 5,
        measured: 30,
        context_switch_every: 0,
    }
    .run(app.as_mut(), &mut m);
    let prof = m.ctx().profiler();
    assert!(
        prof.function_count() > 120,
        "flat profile needs many leaves"
    );
    assert!(prof.cumulative_share(1) < 0.35, "hottest fn bounded");
    assert!(prof.cumulative_share(100) > 0.60, "100 fns majority");
}

#[test]
fn accelerator_statistics_are_consistent() {
    let mut app = AppKind::WordPress.build(6);
    let mut m = PhpMachine::specialized();
    small_load().run(app.as_mut(), &mut m);
    let ht = m.core().htable.stats();
    assert!(ht.get_hits <= ht.gets);
    assert!(ht.set_hits + ht.set_inserts <= ht.sets);
    assert!(ht.hit_rate() <= 1.0 && ht.hit_rate() >= 0.0);
    let heap = m.core().heap.stats();
    assert_eq!(heap.mallocs, heap.malloc_hits + heap.malloc_misses);
    assert_eq!(heap.frees, heap.free_hits + heap.free_spills);
    let s = m.core().straccel.stats();
    assert!(s.bytes >= s.blocks, "blocks process at least a byte each");
    let r = m.core().regex_stats;
    assert!(r.bytes_scanned + r.bytes_skipped_sift <= r.bytes_total + r.bytes_scanned);
}

#[test]
fn machine_config_knobs_are_respected() {
    let mut cfg = MachineConfig::default();
    cfg.htable.entries = 16;
    cfg.heap.freelist_entries = 4;
    let mut m = PhpMachine::new(ExecMode::Specialized, cfg);
    let mut arr = m.new_array();
    for i in 0..100 {
        m.array_set(
            &mut arr,
            ArrayKey::from(format!("key{i}")),
            PhpValue::from(i as i64),
        );
    }
    // Tiny table: dirty evictions must have happened.
    assert!(m.core().htable.stats().evict_dirty > 0);
    for _ in 0..20 {
        let b = m.alloc(32);
        m.free(b);
    }
    m.end_request();
}

#[test]
fn static_analysis_preserves_corpus_outputs_exactly() {
    use phpaccel::workloads::php_corpus;
    for entry in php_corpus::ENTRIES {
        let prepared = php_corpus::prepare(entry);
        for mode in [ExecMode::Baseline, ExecMode::Specialized] {
            let mut off = PhpMachine::new(mode, MachineConfig::default());
            let mut on = PhpMachine::new(mode, MachineConfig::default());
            let plain = prepared.run(&mut off, false);
            let specialized = prepared.run(&mut on, true);
            assert_eq!(
                plain, specialized,
                "{}/{} output diverged with analysis enabled ({mode:?})",
                entry.app, entry.name
            );
            assert_eq!(off.ctx().profiler().static_savings().total(), 0);
        }
    }
}

#[test]
fn static_analysis_saves_work_on_the_wordpress_workload() {
    use phpaccel::workloads::{WordPress, Workload};
    let mut on_app = WordPress::new(21);
    on_app.enable_static_analysis();
    let mut off_app = WordPress::new(21);
    let mut on = PhpMachine::specialized();
    let mut off = PhpMachine::specialized();
    small_load().run(&mut on_app, &mut on);
    small_load().run(&mut off_app, &mut off);

    let s = on.ctx().profiler().static_savings();
    assert!(s.type_checks_avoided > 0, "no type checks avoided");
    assert!(s.rc_incs_avoided > 0, "no refcount increments elided");
    assert!(s.rc_decs_avoided > 0, "no refcount decrements elided");
    assert!(
        on.core().htable.stats().hinted_hash_skips > 0,
        "no hinted probes"
    );
    assert_eq!(off.ctx().profiler().static_savings().total(), 0);
    // Analysis only ever removes metered work.
    let (u_on, u_off) = (
        on.ctx().profiler().total_uops(),
        off.ctx().profiler().total_uops(),
    );
    assert!(
        u_on < u_off,
        "analysis must shrink the µop stream: {u_on} vs {u_off}"
    );
}

#[test]
fn mid_request_panic_recovery_matches_never_accelerated_run() {
    use phpaccel::runtime::PhpStr;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // The same request sequence — including one request that panics midway
    // and is recovered — on a baseline and a specialized machine. After
    // `recover_request` (hmflush, hash-table invalidate, engine resets) the
    // software map contents, the rendered follow-up output, and the slab
    // allocator accounting must be indistinguishable between the modes.
    let run = |mode: ExecMode| -> (Vec<u8>, u64, usize) {
        let mut m = PhpMachine::new(mode, MachineConfig::default());
        let mut arr = m.new_array();

        // Request 0: normal traffic across all domains.
        for k in 0..8u64 {
            m.array_set(
                &mut arr,
                ArrayKey::Str(format!("k{k}").into()),
                PhpValue::Int(k as i64 * 3),
            );
        }
        let s: PhpStr = "  Mixed CASE <tag>  ".into();
        let t = m.trim(&s);
        let _ = m.strtolower(&t);
        m.end_request();

        // Doomed request: mutates the map, allocates, touches the string
        // unit — then dies mid-flight.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            for k in 0..5u64 {
                m.array_set(
                    &mut arr,
                    ArrayKey::Str(format!("k{k}").into()),
                    PhpValue::Int(1000 + k as i64),
                );
            }
            m.alloc_scoped(256);
            m.alloc_scoped(512);
            let s: PhpStr = "half-done request".into();
            let _ = m.strtoupper(&s);
            panic!("simulated mid-request crash");
        }));
        std::panic::set_hook(hook);
        assert!(crashed.is_err());
        m.recover_request();

        // Follow-up request: render everything that survived.
        let mut out = Vec::new();
        for (k, v) in m.foreach(&arr) {
            out.extend_from_slice(format!("{k:?}={v:?};").as_bytes());
        }
        for k in 0..8u64 {
            let v = m.array_get(&arr, &ArrayKey::Str(format!("k{k}").into()));
            out.extend_from_slice(format!("{v:?},").as_bytes());
        }
        let s: PhpStr = "  After & Recovery  ".into();
        let t = m.trim(&s);
        let esc = m.htmlspecialchars(&t);
        out.extend_from_slice(esc.as_bytes());
        m.end_request();

        let (live_bytes, live_blocks) = m
            .ctx()
            .with_allocator(|a| (a.live_bytes(), a.live_block_count()));
        (out, live_bytes, live_blocks)
    };

    let (base_out, base_bytes, base_blocks) = run(ExecMode::Baseline);
    let (spec_out, spec_bytes, spec_blocks) = run(ExecMode::Specialized);
    assert_eq!(
        base_out, spec_out,
        "post-recovery output diverged between modes"
    );
    assert_eq!(
        (base_bytes, base_blocks),
        (spec_bytes, spec_blocks),
        "slab allocator accounting diverged after recovery"
    );
    assert_eq!(base_blocks, 0, "recovery must leave no live blocks");
}
