//! Property-based tests over the core data structures and the
//! accelerator/software equivalences the whole evaluation rests on.

use proptest::prelude::*;

use phpaccel::htable::{GetOutcome, HtConfig, HwHashTable, SetOutcome};
use phpaccel::regex::Regex;
use phpaccel::regexaccel::{regexp_shadow, regexp_sieve, replace_padded, HintVector};
use phpaccel::runtime::array::{ArrayKey, PhpArray};
use phpaccel::runtime::strfuncs::{scalar_find, swar_find};
use phpaccel::runtime::value::PhpValue;
use phpaccel::straccel::StringAccel;

// ---------------------------------------------------------------------------
// PhpArray behaves like an insertion-ordered map
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MapOp {
    Insert(String, i64),
    Remove(String),
    Get(String),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    let key = prop::sample::select(vec!["a", "bb", "ccc", "key4", "key5", "k6", "k7", "k8"])
        .prop_map(str::to_owned);
    prop_oneof![
        (key.clone(), any::<i64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        key.clone().prop_map(MapOp::Remove),
        key.prop_map(MapOp::Get),
    ]
}

proptest! {
    #[test]
    fn php_array_matches_ordered_model(ops in prop::collection::vec(map_op(), 1..120)) {
        let mut arr = PhpArray::new();
        // Model: Vec of (key, value) preserving insertion order.
        let mut model: Vec<(String, i64)> = Vec::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    arr.insert(ArrayKey::from(k.as_str()), PhpValue::from(v));
                    match model.iter_mut().find(|(mk, _)| *mk == k) {
                        Some(slot) => slot.1 = v,
                        None => model.push((k, v)),
                    }
                }
                MapOp::Remove(k) => {
                    let a = arr.remove(&ArrayKey::from(k.as_str())).is_some();
                    let before = model.len();
                    model.retain(|(mk, _)| *mk != k);
                    prop_assert_eq!(a, model.len() != before);
                }
                MapOp::Get(k) => {
                    let a = arr.get(&ArrayKey::from(k.as_str())).map(|v| v.to_int());
                    let m = model.iter().find(|(mk, _)| *mk == k).map(|(_, v)| *v);
                    prop_assert_eq!(a, m);
                }
            }
            prop_assert_eq!(arr.len(), model.len());
        }
        // Final insertion order must match the model exactly.
        let got: Vec<(String, i64)> =
            arr.iter().map(|(k, v)| (k.to_string(), v.to_int())).collect();
        prop_assert_eq!(got, model);
    }
}

// ---------------------------------------------------------------------------
// SWAR string search ≡ scalar search
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn swar_equals_scalar(hay in prop::collection::vec(97u8..103, 0..200),
                          needle in prop::collection::vec(97u8..103, 1..5)) {
        prop_assert_eq!(scalar_find(&hay, &needle), swar_find(&hay, &needle));
    }
}

// ---------------------------------------------------------------------------
// String accelerator ≡ software semantics
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn accel_find_equals_std(hay in prop::collection::vec(32u8..127, 0..300),
                             needle in prop::collection::vec(32u8..127, 1..6)) {
        let mut accel = StringAccel::default();
        let expected = hay
            .windows(needle.len())
            .position(|w| w == needle.as_slice());
        let (got, _) = accel.find(&hay, &needle, 0).unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn accel_case_conversion_equals_std(s in prop::collection::vec(0u8..=255, 0..300)) {
        let mut accel = StringAccel::default();
        let (upper, _) = accel.translate_case(&s, true);
        let expected: Vec<u8> = s.iter().map(|b| b.to_ascii_uppercase()).collect();
        prop_assert_eq!(upper, expected);
        let (lower, _) = accel.translate_case(&s, false);
        let expected: Vec<u8> = s.iter().map(|b| b.to_ascii_lowercase()).collect();
        prop_assert_eq!(lower, expected);
    }

    #[test]
    fn accel_trim_equals_std(s in prop::collection::vec(prop::sample::select(
        vec![b' ', b'\t', b'a', b'b', b'z']), 0..200)) {
        let mut accel = StringAccel::default();
        let ((start, end), _) = accel.trim_range(&s, b" \t").unwrap();
        let lead = s.iter().take_while(|&&b| b == b' ' || b == b'\t').count();
        let trail = s.iter().rev().take_while(|&&b| b == b' ' || b == b'\t').count();
        let (estart, eend) = if lead == s.len() { (s.len(), s.len()) } else { (lead, s.len() - trail) };
        prop_assert_eq!(&s[start..end], &s[estart..eend]);
    }
}

// ---------------------------------------------------------------------------
// Hardware hash table: a coherent cache over a reference map
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn htable_is_a_coherent_cache(
        ops in prop::collection::vec((0u64..4, 0usize..10, any::<u64>()), 1..200)
    ) {
        use std::collections::HashMap;
        let mut ht = HwHashTable::new(HtConfig { entries: 64, probe_width: 4, rtt_maps: 16, rtt_slots: 32 });
        let mut reference: HashMap<(u64, usize), u64> = HashMap::new();
        let keys: Vec<Vec<u8>> = (0..10).map(|i| format!("key_{i}").into_bytes()).collect();
        for (base4, ki, val) in ops {
            let base = 0x1000 + base4 * 0x100;
            match val % 3 {
                0 | 1 => {
                    // SET then GET must observe the value.
                    if matches!(ht.set(base, &keys[ki], val), SetOutcome::Unsupported) {
                        unreachable!("short keys");
                    }
                    reference.insert((base, ki), val);
                    match ht.get(base, &keys[ki]) {
                        GetOutcome::Hit { value_ptr } => prop_assert_eq!(value_ptr, val),
                        GetOutcome::Miss => prop_assert!(false, "set then get must hit"),
                        GetOutcome::Unsupported => unreachable!(),
                    }
                }
                _ => {
                    // A hit must return the last SET/fill value.
                    if let GetOutcome::Hit { value_ptr } = ht.get(base, &keys[ki]) {
                        let expected = reference.get(&(base, ki));
                        prop_assert_eq!(Some(&value_ptr), expected, "stale hit");
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Content sifting: shadow ≡ full scan for eligible patterns
// ---------------------------------------------------------------------------

fn content_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            20 => prop::sample::select(b"abcdefgh ".to_vec()),
            1 => prop::sample::select(b"'\"<>&\n".to_vec()),
        ],
        0..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn shadow_never_misses_matches(content in content_strategy()) {
        let sieve_re = Regex::new("'").unwrap();
        let mut accel = StringAccel::default();
        let sieve = regexp_sieve(&sieve_re, &content, 32, &mut accel);
        for pat in ["\"", "<[a-z]+>", "&", "'s", "\\n"] {
            let re = Regex::new(pat).unwrap();
            let shadow = regexp_shadow(&re, &content, &sieve.hv);
            let (full, _) = re.find_all(&content);
            prop_assert_eq!(&shadow.matches, &full, "pattern {}", pat);
        }
    }

    #[test]
    fn padded_replace_keeps_segment_alignment(
        content in prop::collection::vec(32u8..127, 64..256),
        start in 0usize..64,
        len in 0usize..16,
        repl in prop::collection::vec(33u8..127, 0..40),
    ) {
        let seg = 32;
        let end = (start + len).min(content.len());
        let start = start.min(end);
        let flags: Vec<bool> = content.chunks(seg).map(|_| false).collect();
        let mut hv = HintVector::from_flags(&flags, seg);
        let before_segments = hv.segments();
        let edit = replace_padded(&content, start, end, &repl, &mut hv);
        // Alignment invariant: the length change is a whole number of segments.
        let delta = edit.content.len() as i64 - content.len() as i64;
        prop_assert!(delta >= 0 || (end - start) >= repl.len());
        prop_assert_eq!(delta.rem_euclid(seg as i64), 0, "delta {} not segment-aligned", delta);
        prop_assert_eq!(hv.segments(), before_segments + edit.segments_added);
        // Content after the edited region is preserved verbatim.
        let tail = &content[end..];
        prop_assert!(edit.content.ends_with(tail));
    }
}

// ---------------------------------------------------------------------------
// Regex FSM: resuming from a stored state ≡ fresh run (content reuse core)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn fsm_resume_equals_fresh(subject in "[a-c]{0,40}", split in 0usize..40) {
        let re = Regex::new("a(b|c)*abc").unwrap();
        let bytes = subject.as_bytes();
        let split = split.min(bytes.len());
        let (full, _) = re.match_at(bytes, 0);
        if let Some(state) = re.fsm_state_after(&bytes[..split]) {
            let resumed = re.fsm_run_from(state, &bytes[split..], true);
            prop_assert_eq!(
                resumed.last_match_end.map(|e| e + split),
                full.map(|m| m.end)
            );
        } else {
            // FSM died on the prefix ⇒ no match can extend through it.
            prop_assert!(full.is_none() || full.unwrap().end <= split);
        }
    }
}

// ---------------------------------------------------------------------------
// Robustness: the front end never panics, and budgets fail cleanly
// ---------------------------------------------------------------------------

use phpaccel::core::PhpMachine;
use phpaccel::interp::{parse, Interp};

/// PHP-ish token soup: syntactically broken in every way real traffic is,
/// including multi-byte UTF-8 and stray backslashes.
fn php_soup() -> impl Strategy<Value = String> {
    let frag = prop::sample::select(vec![
        "$x",
        "$y",
        "=",
        "1",
        "99999999999999999999",
        "+",
        "-",
        "*",
        "/",
        "(",
        ")",
        "{",
        "}",
        ";",
        "while",
        "if",
        "else",
        "function",
        "echo",
        "return",
        "'s'",
        "\"d\"",
        "'unterminated",
        ".",
        "==",
        "!=",
        "!",
        "<",
        ">",
        "[",
        "]",
        ",",
        "foreach",
        "as",
        "=>",
        "€",
        "日本",
        "\\",
        "<?php",
        "&&",
        "||",
        "$",
        "0x",
        "1.5e",
        "#",
    ])
    .prop_map(str::to_owned);
    prop::collection::vec(frag, 0..60).prop_map(|v| v.join(" "))
}

proptest! {
    #[test]
    fn frontend_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        // Lexing + parsing arbitrary (lossily decoded) bytes must return
        // Ok or Err — any panic fails the test.
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse(&src);
    }

    #[test]
    fn frontend_never_panics_on_php_soup(src in php_soup()) {
        let _ = parse(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn fuel_exhaustion_is_a_clean_timeout(fuel in 1u64..400) {
        let mut m = PhpMachine::specialized();
        m.ctx().set_fuel(Some(fuel));
        let err = {
            let mut i = Interp::new(&mut m);
            i.run("$i = 0; while (true) { $a = []; $i = $i + 1; }").unwrap_err()
        };
        prop_assert!(err.is_timeout(), "expected timeout, got {:?}", err);
        // The machine is fully recoverable afterwards.
        m.ctx().set_fuel(None);
        m.recover_request();
        prop_assert_eq!(m.ctx().with_allocator(|a| a.live_block_count()), 0);
        let out = {
            let mut i = Interp::new(&mut m);
            i.run("echo 'alive';").unwrap();
            i.take_output()
        };
        prop_assert_eq!(out, b"alive".to_vec());
    }
}
