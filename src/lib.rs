//! # phpaccel
//!
//! Repository façade for the reproduction of *"Architectural Support for
//! Server-Side PHP Processing"* (Gope, Schlais, Lipasti — ISCA 2017).
//!
//! Each member crate is re-exported under a short alias so integration tests
//! and examples can reach the whole system through one dependency:
//!
//! ```
//! use phpaccel::runtime::RuntimeContext;
//! let ctx = RuntimeContext::new();
//! assert_eq!(ctx.profiler().total_uops(), 0);
//! ```
pub use accel_heap as heap;
pub use accel_htable as htable;
pub use accel_regex as regexaccel;
pub use accel_string as straccel;
pub use php_analysis as analysis;
pub use php_interp as interp;
pub use php_runtime as runtime;
pub use phpaccel_core as core;
pub use regex_engine as regex;
pub use serve;
pub use uarch_sim as uarch;
pub use workloads;
