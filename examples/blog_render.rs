//! Render a blog page with the mini-PHP interpreter on the specialized
//! core, end to end: template, symbol tables, string functions, regexps.
//!
//! ```sh
//! cargo run --release --example blog_render
//! ```

use phpaccel::core::PhpMachine;
use phpaccel::interp::Interp;
use phpaccel::runtime::value::PhpValue;

const PAGE: &str = r#"
function esc($s) { return htmlspecialchars($s); }

function render_post($post) {
    $html = '<article><h2>' . esc($post['title']) . '</h2>';
    $html .= '<p class="byline">by ' . esc($post['author']) . '</p>';
    $body = preg_replace('/\n/', '<br/>', $post['body']);
    $html .= '<div>' . $body . '</div>';
    return $html . '</article>';
}

$posts = array(
    array('title' => "Life & Times of <PHP>",
          'author' => 'alice',
          'body' => "It's been a \"great\" year.\nMore to come."),
    array('title' => 'Hardware for Scripts',
          'author' => 'bob',
          'body' => "Accelerators don't have to be big.\nSmall ones add up."),
);

$out = '<main>';
foreach ($posts as $post) {
    $out .= render_post($post);
}
echo $out . '</main>';
"#;

fn main() {
    let mut machine = PhpMachine::specialized();
    let mut interp = Interp::new(&mut machine);
    interp.set_var_public("site", PhpValue::from("phpaccel demo"));
    interp.run(PAGE).expect("template runs");
    let html = String::from_utf8_lossy(interp.output()).into_owned();

    println!("rendered page ({} bytes):\n", html.len());
    println!("{html}\n");

    let core = machine.core();
    println!("what the accelerators did while rendering:");
    println!(
        "  hash table SETs/GETs : {}/{}",
        core.htable.stats().sets,
        core.htable.stats().gets
    );
    println!("  string accel ops     : {}", core.straccel.stats().ops);
    println!("  regexp sieve passes  : {}", core.regex_stats.sieve_calls);
    println!(
        "  profiler: {} µops across {} leaf functions",
        machine.ctx().profiler().total_uops(),
        machine.ctx().profiler().function_count()
    );
}
