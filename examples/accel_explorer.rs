//! Design-space explorer: sweep accelerator parameters and print how the
//! headline improvement responds — hash-table size, heap free-list depth,
//! string-block width, sifting segment size.
//!
//! ```sh
//! cargo run --release --example accel_explorer
//! ```

use phpaccel::core::{compare, ExecMode, MachineConfig, PhpMachine};
use phpaccel::htable::HtConfig;
use phpaccel::uarch::EnergyModel;
use phpaccel::workloads::{AppKind, LoadGen};

fn improvement(cfg: MachineConfig) -> f64 {
    let lg = LoadGen {
        warmup: 15,
        measured: 40,
        context_switch_every: 0,
    };
    let mut base_app = AppKind::WordPress.build(3);
    let mut spec_app = AppKind::WordPress.build(3);
    let mut base = PhpMachine::new(ExecMode::Baseline, cfg.clone());
    let mut spec = PhpMachine::new(ExecMode::Specialized, cfg);
    lg.run(base_app.as_mut(), &mut base);
    lg.run(spec_app.as_mut(), &mut spec);
    compare("wp", &base, &spec, &EnergyModel::default()).improvement_over_priors()
}

fn main() {
    println!("WordPress improvement over the +priors machine, by design point\n");

    println!("hash table entries (paper default 512):");
    for entries in [16usize, 64, 256, 512, 1024] {
        let cfg = MachineConfig {
            htable: HtConfig {
                entries,
                probe_width: 4,
                ..HtConfig::default()
            },
            ..MachineConfig::default()
        };
        println!("  {entries:>5} entries: {:.2}%", improvement(cfg) * 100.0);
    }

    println!("\nheap free-list depth (paper default 32):");
    for depth in [4usize, 8, 16, 32, 64] {
        let mut cfg = MachineConfig::default();
        cfg.heap.freelist_entries = depth;
        println!("  {depth:>5} entries: {:.2}%", improvement(cfg) * 100.0);
    }

    println!("\nstring accelerator block width (paper default 64 B / 3 cycles):");
    for width in [16usize, 32, 64] {
        let mut cfg = MachineConfig::default();
        cfg.straccel.block_width = width;
        println!("  {width:>5} bytes : {:.2}%", improvement(cfg) * 100.0);
    }

    println!("\nsifting segment size (default 32 B):");
    for seg in [16usize, 32, 64] {
        let cfg = MachineConfig {
            segment_size: seg,
            ..MachineConfig::default()
        };
        println!("  {seg:>5} bytes : {:.2}%", improvement(cfg) * 100.0);
    }
}
