//! Quickstart: run the same WordPress-like request stream on the software
//! baseline and on the specialized core, and print the paper's headline
//! comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use phpaccel::core::{compare, ExecMode, MachineConfig, PhpMachine};
use phpaccel::uarch::EnergyModel;
use phpaccel::workloads::{AppKind, LoadGen};

fn main() {
    let lg = LoadGen {
        warmup: 20,
        measured: 60,
        context_switch_every: 25,
    };
    let cfg = MachineConfig::default();

    let run = |mode: ExecMode| {
        let mut app = AppKind::WordPress.build(7);
        let mut machine = PhpMachine::new(mode, cfg.clone());
        lg.run(app.as_mut(), &mut machine);
        machine
    };

    println!(
        "running WordPress-like workload ({} requests)...",
        lg.measured
    );
    let baseline = run(ExecMode::Baseline);
    let specialized = run(ExecMode::Specialized);

    let cmp = compare(
        "WordPress",
        &baseline,
        &specialized,
        &EnergyModel::default(),
    );
    println!("\nnormalized execution time (baseline = 1.0):");
    println!("  + prior optimizations : {:.4}", cmp.normalized_priors());
    println!(
        "  + specialized core    : {:.4}",
        cmp.normalized_specialized()
    );
    println!(
        "  improvement over priors: {:.2}%  (paper: 17.93% average)",
        cmp.improvement_over_priors() * 100.0
    );
    println!(
        "  energy saving          : {:.2}%  (paper: 21.01% average)",
        cmp.energy_saving * 100.0
    );

    let core = specialized.core();
    println!("\naccelerator activity:");
    println!(
        "  hash table : {} GETs, {} SETs, hit rate {:.1}%",
        core.htable.stats().gets,
        core.htable.stats().sets,
        core.htable.stats().hit_rate() * 100.0
    );
    println!(
        "  heap mgr   : {} mallocs, hit rate {:.1}%",
        core.heap.stats().mallocs,
        core.heap.stats().hit_rate() * 100.0
    );
    println!(
        "  string unit: {} ops, {:.1} bytes/cycle",
        core.straccel.stats().ops,
        core.straccel.stats().bytes_per_cycle()
    );
    println!(
        "  regexp     : {:.1}% of content skipped (sift+reuse)",
        core.regex_stats.skip_fraction() * 100.0
    );
}
