//! Drive the MediaWiki-like workload and show the content-sifting and
//! content-reuse machinery at work (§4.5).
//!
//! ```sh
//! cargo run --release --example wiki_render
//! ```

use phpaccel::core::PhpMachine;
use phpaccel::regex::Regex;
use phpaccel::regexaccel::{regexp_shadow, regexp_sieve, ShadowMode};
use phpaccel::runtime::string::PhpStr;
use phpaccel::straccel::StringAccel;
use phpaccel::workloads::{AppKind, LoadGen};

fn main() {
    // 1. The mechanism, step by step, on a small article.
    let article = PhpStr::from(
        "plain words fill most of the article body here and continue for a while \
         until a '''bold''' claim and a [[link]] appear and then more plain words \
         carry on to the end of the text without any markup at all",
    );
    let sieve_re = Regex::new("'''").unwrap();
    let shadow_re = Regex::new("\\[\\[[a-z]+\\]\\]").unwrap();
    let mut straccel = StringAccel::default();

    let sieve = regexp_sieve(&sieve_re, article.as_bytes(), 32, &mut straccel);
    println!(
        "sieve: {} matches; HV: {}/{} segments dirty",
        sieve.matches.len(),
        sieve.hv.dirty_count(),
        sieve.hv.segments()
    );
    let shadow = regexp_shadow(&shadow_re, article.as_bytes(), &sieve.hv);
    match shadow.mode {
        ShadowMode::Skipping { lookback } => println!(
            "shadow: skipped {} of {} bytes (lookback {}), found {} match(es)",
            shadow.bytes_skipped,
            article.len(),
            lookback,
            shadow.matches.len()
        ),
        other => println!("shadow fell back: {other:?}"),
    }

    // 2. The full wiki workload on the specialized machine.
    let mut app = AppKind::MediaWiki.build(11);
    let mut machine = PhpMachine::specialized();
    let lg = LoadGen {
        warmup: 10,
        measured: 40,
        context_switch_every: 0,
    };
    lg.run(app.as_mut(), &mut machine);
    let stats = machine.core().regex_stats;
    println!("\nMediaWiki-like workload, {} measured requests:", 40);
    println!("  sieve passes     : {}", stats.sieve_calls);
    println!(
        "  shadow passes    : {} ({} skipping)",
        stats.shadow_calls, stats.shadow_skipping
    );
    println!(
        "  content skipped  : {:.1}% of {} bytes offered to regexps",
        stats.skip_fraction() * 100.0,
        stats.bytes_total
    );
    println!(
        "  reuse table      : {} hits / {} lookups",
        machine.core().reuse.stats().hits,
        machine.core().reuse.stats().lookups
    );
}
