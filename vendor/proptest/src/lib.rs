//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait (`prop_map`, boxing), integer-range and
//! string-pattern strategies, `prop::collection::vec`, `prop::sample::select`,
//! tuples, `prop_oneof!` (weighted and unweighted), `any::<T>()`, the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic), failures panic immediately, and there is **no
//! shrinking** — a failing case prints its inputs via the panic message of
//! the underlying assertion instead.

use rand::rngs::StdRng;

/// Test-runner configuration (subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// A generation strategy: produces random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-range strategy for a primitive, as `any::<T>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — draws from the whole domain of `T`.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Primitives supported by [`any`].
pub trait ArbitraryPrim {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Rng::gen::<u64>(rng) as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen::<u64>(rng) & 1 == 1
    }
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// String-pattern strategy: `"[a-c]{0,40}"`-style patterns generate matching
/// strings. Supported syntax: literal chars, `[..]` classes with ranges, and
/// an optional `{m,n}` / `{n}` repetition suffix per atom.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let bytes = pattern.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        // Parse one atom: a char class or a literal byte.
        let chars: Vec<char> = if bytes[i] == b'[' {
            let close = pattern[i..].find(']').expect("unclosed [ in pattern") + i;
            let inner = &pattern[i + 1..close];
            i = close + 1;
            expand_class(inner)
        } else {
            let c = pattern[i..].chars().next().expect("char");
            i += c.len_utf8();
            vec![c]
        };
        // Optional repetition.
        let (lo, hi) = if i < bytes.len() && bytes[i] == b'{' {
            let close = pattern[i..].find('}').expect("unclosed { in pattern") + i;
            let spec = &pattern[i + 1..close];
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n: usize = spec.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = if lo == hi {
            lo
        } else {
            rand::Rng::gen_range(rng, lo..=hi)
        };
        for _ in 0..n {
            let pick = rand::Rng::gen_range(rng, 0..chars.len());
            out.push(chars[pick]);
        }
    }
    out
}

fn expand_class(inner: &str) -> Vec<char> {
    let cs: Vec<char> = inner.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
            for v in a..=b {
                out.push(char::from_u32(v).expect("class range"));
            }
            i += 3;
        } else {
            out.push(cs[i]);
            i += 1;
        }
    }
    out
}

/// Namespaced strategy constructors, as `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        /// `vec(element, 1..20)` — vectors with lengths in the given range.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy {
                element,
                lo: size.start,
                hi: size.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = rand::Rng::gen_range(rng, self.lo..self.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `select(vec![..])` — picks one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select on empty set");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                let i = rand::Rng::gen_range(rng, 0..self.options.len());
                self.options[i].clone()
            }
        }
    }
}

/// Weighted union of boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = variants.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { variants, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rand::Rng::gen_range(rng, 0..self.total);
        for (w, s) in &self.variants {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything tests import.
pub mod prelude {
    pub use super::{any, prop, BoxedStrategy, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// `prop_oneof![a, b]` / `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside `proptest!` bodies (panics immediately; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// The test-definition macro. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$attr:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Seed differs per test name so tests don't share streams.
                let mut __seed = 0xC0FF_EE00u64;
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(131).wrapping_add(b as u64);
                }
                for __case in 0..cfg.cases as u64 {
                    let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                        __seed ^ (__case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-c]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![3 => (0i64..10).prop_map(|v| v * 2), 1 => 100i64..110]) {
            prop_assert!(x % 2 == 0 || (100..110).contains(&x));
        }
    }
}
