//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen`, `Rng::gen_range`
//! over integer ranges, and `Rng::gen_bool`. The generator is
//! xoshiro256**-based and fully deterministic from the seed, which is all
//! the simulator needs (reproducible synthetic traces and corpora).

/// Seedable generators.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Types that can seed a generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Integer types usable with [`Rng::gen_range`] (conversion to/from a wide
/// intermediate so one blanket impl covers all widths — keeping literal
/// inference working exactly like the real crate's single `SampleUniform`
/// blanket impl does).
pub trait UniformInt: Copy {
    /// Widens to `i128`.
    fn widen(self) -> i128;
    /// Narrows from `i128` (value guaranteed in range).
    fn narrow(v: i128) -> Self;
}

macro_rules! uniform_ints {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn widen(self) -> i128 { self as i128 }
            fn narrow(v: i128) -> Self { v as $t }
        }
    )*};
}

uniform_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (start, end) = (self.start.widen(), self.end.widen());
        assert!(start < end, "gen_range: empty range");
        let v = (rng.next_u64() as u128) % ((end - start) as u128);
        T::narrow(start + v as i128)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (start, end) = (self.start().widen(), self.end().widen());
        assert!(start <= end, "gen_range: empty range");
        let v = (rng.next_u64() as u128) % ((end - start) as u128 + 1);
        T::narrow(start + v as i128)
    }
}

/// The generator interface (subset).
pub trait Rng {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws uniformly from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        <f64 as Standard>::draw(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..7);
            assert!(v < 7);
            let b: u8 = r.gen_range(0..26);
            assert!(b < 26);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
