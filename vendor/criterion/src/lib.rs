//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the criterion API for the workspace's
//! `benches/` targets to compile and produce useful numbers offline:
//! benchmark groups, `bench_function`, `Bencher::iter` /
//! `Bencher::iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a simple median-of-samples wall-clock timer —
//! adequate for relative comparisons, with none of criterion's statistics.

use std::time::Instant;

/// How batched inputs are sized (ignored; kept for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { name, samples: 30 }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut g = BenchmarkGroup {
            name: String::new(),
            samples: 30,
        };
        g.bench_function(name, f);
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let mut b = Bencher {
            samples: self.samples,
            nanos_per_iter: Vec::new(),
        };
        f(&mut b);
        let mut ns = b.nanos_per_iter;
        ns.sort_unstable();
        let median = ns.get(ns.len() / 2).copied().unwrap_or(0);
        let prefix = if self.name.is_empty() {
            String::new()
        } else {
            format!("{}/", self.name)
        };
        println!(
            "  {prefix}{name}: median {median} ns/iter ({} samples)",
            ns.len()
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    nanos_per_iter: Vec<u64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate an iteration count that runs ≥ ~200 µs.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let dt = t.elapsed();
            if dt.as_micros() >= 200 || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.nanos_per_iter
                .push((t.elapsed().as_nanos() as u64) / iters.max(1));
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup not timed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.nanos_per_iter.push(t.elapsed().as_nanos() as u64);
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
