#!/usr/bin/env bash
# Fault-injection soak: seeded faults against all four accelerators, full
# availability and byte-identity required. Exits nonzero on any regression.
# Response bodies are dropped inside the soak binary (keep_bodies = false),
# so long seed lists run in bounded memory.
# Usage: scripts/soak.sh [--workers N] [seed ...]
#   --workers N  run each seed through an N-worker pool (threaded mode)
#   default: a fixed seed set, single worker plus a 4-worker pool pass
set -euo pipefail
cd "$(dirname "$0")/.."

workers=1
seeds=()
while [ $# -gt 0 ]; do
  case "$1" in
    --workers)
      workers="$2"
      shift 2
      ;;
    *)
      seeds+=("$1")
      shift
      ;;
  esac
done

default_seeds=0
if [ ${#seeds[@]} -eq 0 ]; then
  seeds=(20170613 1 12345)
  default_seeds=1
fi

cargo build --release -q -p bench --bin soak

for seed in "${seeds[@]}"; do
  if [ "$workers" -gt 1 ]; then
    echo "== soak seed $seed ($workers workers) =="
    ./target/release/soak "$seed" --workers "$workers"
  else
    echo "== soak seed $seed =="
    ./target/release/soak "$seed"
  fi
done

# With the default seed set, also exercise the threaded pool once.
if [ "$workers" -eq 1 ] && [ "$default_seeds" -eq 1 ]; then
  echo "== soak seed ${seeds[0]} (4 workers) =="
  ./target/release/soak "${seeds[0]}" --workers 4
fi

echo "Soak passed for seeds: ${seeds[*]} (workers: $workers)"
