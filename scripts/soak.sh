#!/usr/bin/env bash
# Fault-injection soak: seeded faults against all four accelerators, full
# availability and byte-identity required. Exits nonzero on any regression.
# Usage: scripts/soak.sh [seed ...]   (default: a fixed seed set)
set -euo pipefail
cd "$(dirname "$0")/.."

seeds=("$@")
if [ ${#seeds[@]} -eq 0 ]; then
  seeds=(20170613 1 12345)
fi

cargo build --release -q -p bench --bin soak

for seed in "${seeds[@]}"; do
  echo "== soak seed $seed =="
  ./target/release/soak "$seed"
done

echo "Soak passed for seeds: ${seeds[*]}"
