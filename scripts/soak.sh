#!/usr/bin/env bash
# Fault-injection soak: seeded faults against all four accelerators, full
# availability and byte-identity required. Exits nonzero on any regression.
# Response bodies are dropped inside the soak binary (keep_bodies = false),
# so long seed lists run in bounded memory.
# Usage: scripts/soak.sh [--workers N] [--arena] [--engine tree|vm]
#                        [--memo] [--shed] [--shape S] [seed ...]
#   --workers N  run each seed through an N-worker pool (threaded mode);
#                with --shed, the *simulated* worker count draining the queue
#   --shed       overload-survival soak: shaped arrivals at ~2x capacity
#                through the deadline-aware admission controller (machines
#                stay live between requests; shedding must stay graceful)
#   --shape S    arrival shape for --shed runs
#                (steady|diurnal|burst|flash-crowd)
#   --arena      arena/epoch allocation for the request-scoped heap churn
#                (reference machines stay on free lists, so replay
#                cross-checks the two allocators under fault injection)
#   --engine E   additionally run one corpus script per request on engine E
#                (vm = compiled opcode VM; references stay on the tree
#                walker, so replay is a cross-engine differential)
#   --memo       attach one shared cross-request memo cache to the script
#                phase (implies it): proven call sites replay out of the
#                cache while faults churn, and the run fails unless the
#                tier engaged and replay stayed byte-identical
#   default: a fixed seed set, single worker plus a 4-worker pool pass
set -euo pipefail
cd "$(dirname "$0")/.."

workers=1
arena=()
engine=()
memo=()
shed=()
shape=()
seeds=()
while [ $# -gt 0 ]; do
  case "$1" in
    --workers)
      workers="$2"
      shift 2
      ;;
    --arena)
      arena=(--arena)
      shift
      ;;
    --engine)
      engine=(--engine "$2")
      shift 2
      ;;
    --memo)
      memo=(--memo)
      shift
      ;;
    --shed)
      shed=(--shed)
      shift
      ;;
    --shape)
      shape=(--shape "$2")
      shift 2
      ;;
    *)
      seeds+=("$1")
      shift
      ;;
  esac
done

default_seeds=0
if [ ${#seeds[@]} -eq 0 ]; then
  seeds=(20170613 1 12345)
  default_seeds=1
fi

cargo build --release -q -p bench --bin soak

if [ ${#shed[@]} -gt 0 ]; then
  for seed in "${seeds[@]}"; do
    echo "== soak seed $seed (overload${shape:+, shape ${shape[1]}}, $workers simulated workers${arena:+, arena}${engine:+, engine ${engine[1]}}${memo:+, memo}) =="
    ./target/release/soak "$seed" --shed --workers "$workers" \
      ${shape[@]+"${shape[@]}"} ${arena[@]+"${arena[@]}"} ${engine[@]+"${engine[@]}"} ${memo[@]+"${memo[@]}"}
  done
  echo "Overload soak passed for seeds: ${seeds[*]}"
  exit 0
fi

for seed in "${seeds[@]}"; do
  if [ "$workers" -gt 1 ]; then
    echo "== soak seed $seed ($workers workers${arena:+, arena}${engine:+, engine ${engine[1]}}${memo:+, memo}) =="
    ./target/release/soak "$seed" --workers "$workers" ${arena[@]+"${arena[@]}"} ${engine[@]+"${engine[@]}"} ${memo[@]+"${memo[@]}"}
  else
    echo "== soak seed $seed${arena:+ (arena)}${engine:+ (engine ${engine[1]})}${memo:+ (memo)} =="
    ./target/release/soak "$seed" ${arena[@]+"${arena[@]}"} ${engine[@]+"${engine[@]}"} ${memo[@]+"${memo[@]}"}
  fi
done

# With the default seed set, also exercise the threaded pool once.
if [ "$workers" -eq 1 ] && [ "$default_seeds" -eq 1 ]; then
  echo "== soak seed ${seeds[0]} (4 workers${arena:+, arena}${engine:+, engine ${engine[1]}}${memo:+, memo}) =="
  ./target/release/soak "${seeds[0]}" --workers 4 ${arena[@]+"${arena[@]}"} ${engine[@]+"${engine[@]}"} ${memo[@]+"${memo[@]}"}
fi

echo "Soak passed for seeds: ${seeds[*]} (workers: $workers${arena:+, arena}${engine:+, engine ${engine[1]}}${memo:+, memo})"
