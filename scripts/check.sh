#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== interprocedural analysis =="
# Lints are errors: every corpus lint must be covered by the allowlist.
cargo run -q -p bench --bin analyze -- --gate scripts/taint-allowlist.txt >/dev/null

echo "== fault-injection soak =="
scripts/soak.sh

echo "== serve bench smoke (release) =="
cargo build --release -q -p bench --bin serve_bench
./target/release/serve_bench --smoke --out target/BENCH_serve_smoke.json
# The smoke run must emit parseable JSON with the acceptance fields.
python3 - <<'EOF'
import json
with open("target/BENCH_serve_smoke.json") as f:
    doc = json.load(f)
assert doc["mismatches"] == 0, doc["mismatches"]
assert doc["speedup_at_4_workers"] >= 1.5, doc["speedup_at_4_workers"]
assert len(doc["runs"]) == 4 and [r["workers"] for r in doc["runs"]] == [1, 2, 4, 8]
for r in doc["runs"]:
    for key in ("req_per_s", "p50_us", "p95_us", "p99_us"):
        assert r[key] > 0, (r["workers"], key)
print("BENCH_serve_smoke.json is valid")
EOF

echo "All checks passed."
