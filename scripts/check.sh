#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== interprocedural analysis =="
# Lints are errors: every corpus lint must be covered by the allowlist.
cargo run -q -p bench --bin analyze -- --gate scripts/taint-allowlist.txt >/dev/null

echo "== fault-injection soak =="
scripts/soak.sh

echo "All checks passed."
