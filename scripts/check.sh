#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from anywhere; everything executes at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== interprocedural analysis =="
# Lints are errors: every corpus lint must be covered by the allowlist.
# (Covers the taint lints and the region pass's [cross-request-escape]
# findings alike — any new escaping site fails here until allowlisted.)
cargo run -q -p bench --bin analyze -- --gate scripts/taint-allowlist.txt \
  >target/analyze-gate.out

echo "== taint-allowlist drift check =="
# Every allowlist pattern must still match a real corpus finding; a stale
# entry would silently waive a lint that no longer exists.
while IFS= read -r line; do
  case "$line" in ''|'#'*) continue ;; esac
  if ! grep -qF -- "$line" target/analyze-gate.out; then
    echo "stale allowlist entry (matches no corpus lint): $line" >&2
    exit 1
  fi
done <scripts/taint-allowlist.txt
echo "all allowlist entries resolve to live corpus lints"

echo "== fault-injection soak =="
scripts/soak.sh

echo "== arena-epoch soak smoke (4 workers) =="
scripts/soak.sh --workers 4 --arena 20170613

echo "== compiled-VM soak smoke (4 workers, engine=vm) =="
# Primaries execute compiled opcodes, references tree-walk the same source:
# the byte-identity replay is a cross-engine differential under fault
# injection.
scripts/soak.sh --workers 4 --engine vm 20170613

echo "== memo soak smoke (4 workers, shared cross-request cache) =="
# One shared memo cache across all workers with the full fault plan live:
# proven call sites replay out of the cache while breakers trip and recover
# around them, and every response must still replay byte-identically.
scripts/soak.sh --workers 4 --memo 20170613

echo "== overload-survival soak smoke (flash crowd, shedding) =="
# Shaped arrivals at ~2x capacity through the admission controller, with
# the full fault plan live: shedding must be early and graceful, admitted
# requests must all serve, and replay must stay byte-identical.
scripts/soak.sh --shed --shape flash-crowd 20170613

echo "== serve bench smoke (release) =="
cargo build --release -q -p bench --bin serve_bench
./target/release/serve_bench --smoke --out target/BENCH_serve_smoke.json
# The smoke run must emit parseable JSON with the acceptance fields.
python3 - <<'EOF'
import json
with open("target/BENCH_serve_smoke.json") as f:
    doc = json.load(f)
assert doc["mismatches"] == 0, doc["mismatches"]
assert doc["speedup_at_4_workers"] >= 1.5, doc["speedup_at_4_workers"]
assert len(doc["runs"]) == 4 and [r["workers"] for r in doc["runs"]] == [1, 2, 4, 8]
for r in doc["runs"]:
    for key in ("req_per_s", "p50_us", "p95_us", "p99_us"):
        assert r[key] > 0, (r["workers"], key)
print("BENCH_serve_smoke.json is valid")
EOF

echo "== alloc bench smoke (release) =="
cargo build --release -q -p bench --bin alloc_bench
./target/release/alloc_bench --smoke --out target/BENCH_alloc_smoke.json
python3 - <<'EOF'
import json
with open("target/BENCH_alloc_smoke.json") as f:
    doc = json.load(f)
assert doc["mismatches"] == 0, doc["mismatches"]
assert len(doc["runs"]) == 4 and [r["workers"] for r in doc["runs"]] == [1, 2, 4, 8]
for r in doc["runs"]:
    assert r["ok"] == r["requests"], (r["workers"], r["ok"])
    assert r["teardown_uops_saved"] > 0, r["workers"]
    assert r["arena_bytes_reclaimed"] > 0, r["workers"]
    assert r["elapsed_uops_arena"] < r["elapsed_uops_free_list"], r["workers"]
print("BENCH_alloc_smoke.json is valid")
EOF

echo "== vm bench smoke (release) =="
cargo build --release -q -p bench --bin vm_bench
./target/release/vm_bench --smoke --out target/BENCH_vm_smoke.json
python3 - <<'EOF'
import json
with open("target/BENCH_vm_smoke.json") as f:
    doc = json.load(f)
assert doc["mismatches"] == 0, doc["mismatches"]
assert doc["reduction_pct_at_1_worker"] >= 25.0, doc["reduction_pct_at_1_worker"]
assert doc["fusion_delta_pct_at_1_worker"] > 0, doc["fusion_delta_pct_at_1_worker"]
assert len(doc["runs"]) == 4 and [r["workers"] for r in doc["runs"]] == [1, 2, 4, 8]
for r in doc["runs"]:
    assert r["ok"] == r["requests"], (r["workers"], r["ok"])
    assert r["replay_mismatches"] == 0, r["workers"]
    assert r["elapsed_uops_vm_fused"] < r["elapsed_uops_vm"] < r["elapsed_uops_tree"], r["workers"]
    assert r["vm_ops_executed"] > 0 and r["vm_fused_ops"] > 0, r["workers"]
print("BENCH_vm_smoke.json is valid")
EOF

echo "== memo bench smoke (release) =="
cargo build --release -q -p bench --bin memo_bench
./target/release/memo_bench --smoke --out target/BENCH_memo_smoke.json
python3 - <<'EOF'
import json
with open("target/BENCH_memo_smoke.json") as f:
    doc = json.load(f)
assert doc["bench"] == "memo", doc["bench"]
assert doc["mismatches"] == 0, doc["mismatches"]
assert len(doc["runs"]) == 4 and [r["workers"] for r in doc["runs"]] == [1, 2, 4, 8]
for r in doc["runs"]:
    assert r["ok"] == r["requests"], (r["workers"], r["ok"])
    assert r["replay_mismatches"] == 0, r["workers"]
    assert r["memo_hits"] > 0 and r["memo_stores"] > 0, r["workers"]
    assert r["memo_invalidations"] > 0, r["workers"]
    if r["workers"] >= 4:
        assert r["elapsed_uops_memo_on"] < r["elapsed_uops_memo_off"], r["workers"]
        assert r["elapsed_uop_reduction_pct"] > 0, r["workers"]
print("BENCH_memo_smoke.json is valid")
EOF

echo "== overload bench smoke (release) =="
cargo build --release -q -p bench --bin overload_bench
./target/release/overload_bench --smoke --out target/BENCH_overload_smoke.json
python3 - <<'EOF2'
import json
with open("target/BENCH_overload_smoke.json") as f:
    doc = json.load(f)
assert doc["bench"] == "overload", doc["bench"]
assert doc["mismatches"] == 0, doc["mismatches"]
runs = doc["runs"]
assert runs, "no runs emitted"
for r in runs:
    for key in ("engine", "workers", "load_factor", "shape", "requests", "admitted",
                "shed", "shed_fraction", "availability_admitted", "budget_us",
                "p50_us", "p99_us", "p999_us", "slo_attainment", "replay_mismatches"):
        assert key in r, (r.get("engine"), r.get("workers"), key)
    assert r["replay_mismatches"] == 0, (r["engine"], r["workers"])
    assert r["admitted"] + r["shed"] == r["requests"], (r["engine"], r["workers"])
    if r["load_factor"] >= 2.0:
        assert r["shed_fraction"] > 0.25, (r["engine"], r["workers"], r["shed_fraction"])
        assert r["availability_admitted"] >= 0.99, (r["engine"], r["workers"])
        assert r["p99_us"] <= r["budget_us"], (r["engine"], r["workers"])
print("BENCH_overload_smoke.json is valid")
EOF2

echo "== http front-end smoke (release) =="
cargo build --release -q -p bench --bin serve_http --bin http_bench
scripts/http_smoke.sh target/release/serve_http

echo "== http bench smoke (release) =="
./target/release/http_bench --smoke --out target/BENCH_http_smoke.json
python3 - <<'EOF'
import json
with open("target/BENCH_http_smoke.json") as f:
    doc = json.load(f)
assert doc["bench"] == "http", doc["bench"]
assert doc["byte_identity_vs_direct_server"] is True
assert len(doc["runs"]) == 3 and [r["workers"] for r in doc["runs"]] == [1, 2, 4]
for r in doc["runs"]:
    assert r["ok_200"] == r["requests"], (r["workers"], r["ok_200"])
    assert r["errors"] == 0, r["workers"]
    assert r["replay_mismatches"] == 0, r["workers"]
    assert r["worker_requests"] == r["requests"], r["workers"]
    for key in ("req_per_s", "p50_us", "p95_us", "p99_us"):
        assert r[key] > 0, (r["workers"], key)
print("BENCH_http_smoke.json is valid")
EOF

echo "All checks passed."
