#!/usr/bin/env bash
# HTTP front-end smoke: boot serve_http on an ephemeral loopback port,
# hit /health, /metrics, and one corpus script, then shut it down.
# Usage: scripts/http_smoke.sh [path-to-serve_http]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/serve_http}"
if [ ! -x "$BIN" ]; then
  echo "http_smoke: $BIN not built" >&2
  exit 1
fi

OUT="$(mktemp)"
"$BIN" --workers 2 >"$OUT" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

# The first stdout line carries the bound address; wait for it.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's#^serve_http: listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$OUT" | head -n1)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "http_smoke: serve_http died during startup:" >&2
    cat "$OUT" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "http_smoke: no listening port announced:" >&2
  cat "$OUT" >&2
  exit 1
fi
echo "http_smoke: serve_http is on port $PORT"

PORT="$PORT" python3 - <<'EOF'
import http.client
import os

port = int(os.environ["PORT"])

def get(path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.request("GET", path)
    resp = conn.getresponse()
    body = resp.read()
    conn.close()
    return resp.status, body

status, body = get("/health")
assert status == 200 and body == b"ok\n", (status, body)
print("http_smoke: /health ok")

status, body = get("/metrics")
assert status == 200, status
text = body.decode("utf-8")
for name in (
    "phpaccel_requests_total",
    "phpaccel_http_requests_total",
    "phpaccel_static_savings_total",
):
    assert name in text, name
print("http_smoke: /metrics ok (%d lines)" % len(text.splitlines()))

status, body = get("/run/tag-cloud")
assert status == 200 and body, (status, len(body))
print("http_smoke: /run/tag-cloud ok (%d bytes)" % len(body))

# The request above must now show up in the metrics.
status, body = get("/metrics")
assert status == 200, status
served = [
    line for line in body.decode("utf-8").splitlines()
    if line.startswith("phpaccel_requests_total ")
]
assert served and float(served[0].split()[-1]) >= 1, served
print("http_smoke: /metrics reflects the served request")

status, _ = get("/no/such/route")
assert status == 404, status
print("http_smoke: 404 routing ok")
EOF

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
trap 'rm -f "$OUT"' EXIT
echo "http_smoke: PASS"
